module Graph = Hd_graph.Graph
module Bitset = Hd_graph.Bitset
module Hypergraph = Hd_hypergraph.Hypergraph
module Ordering = Hd_core.Ordering
module Td = Hd_core.Tree_decomposition
module Ghd = Hd_core.Ghd
module Eval = Hd_core.Eval
module Heur = Hd_core.Ordering_heuristics

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let random_graph rng n p =
  let g = Graph.create n in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      if Random.State.float rng 1.0 < p then Graph.add_edge g u v
    done
  done;
  g

let example5 () =
  Hypergraph.create ~n:6 [ [ 0; 1; 2 ]; [ 0; 4; 5 ]; [ 2; 3; 4 ] ]

(* --- orderings --- *)

let test_ordering () =
  check "identity" true (Ordering.is_permutation (Ordering.identity 5));
  check "not perm (dup)" false (Ordering.is_permutation [| 0; 0; 2 |]);
  check "not perm (range)" false (Ordering.is_permutation [| 0; 3 |]);
  let rng = Random.State.make [| 1 |] in
  for _ = 1 to 20 do
    check "random perm" true (Ordering.is_permutation (Ordering.random rng 9))
  done;
  let sigma = [| 2; 0; 1 |] in
  Alcotest.(check (array int)) "positions" [| 1; 2; 0 |] (Ordering.positions sigma);
  Alcotest.(check (array int)) "reverse" [| 1; 0; 2 |] (Ordering.reverse sigma)

(* --- tree decompositions --- *)

let test_td_path () =
  (* eliminating a path in identity order gives width 1 *)
  let g = Graph.path 5 in
  let td = Td.of_ordering g (Ordering.identity 5) in
  check_int "path width" 1 (Td.width td);
  check "valid" true (Td.valid_for_graph g td)

let test_td_clique () =
  let g = Graph.complete 4 in
  let td = Td.of_ordering g (Ordering.identity 4) in
  check_int "K4 width" 3 (Td.width td);
  check "valid" true (Td.valid_for_graph g td)

let test_td_cycle_orderings () =
  let g = Graph.cycle 6 in
  let td = Td.of_ordering g (Ordering.identity 6) in
  check_int "C6 width 2" 2 (Td.width td);
  check "valid" true (Td.valid_for_graph g td)

let test_td_structure_checks () =
  let b = Bitset.of_list 3 [ 0 ] in
  check "two roots rejected" true
    (try
       ignore (Td.make ~bags:[| b; b |] ~parent:[| -1; -1 |]);
       false
     with Invalid_argument _ -> true);
  check "cycle rejected" true
    (try
       ignore (Td.make ~bags:[| b; b; b |] ~parent:[| -1; 2; 1 |]);
       false
     with Invalid_argument _ -> true)

let test_td_invalid_decomposition () =
  let g = Graph.path 3 in
  (* bags violate connectedness: vertex 0 appears in two disconnected
     nodes *)
  let bags = [| Bitset.of_list 3 [ 0; 1 ]; Bitset.of_list 3 [ 1; 2 ]; Bitset.of_list 3 [ 0 ] |] in
  let td = Td.make ~bags ~parent:[| -1; 0; 1 |] in
  check "connectedness violated" false (Td.valid_for_graph g td);
  (* missing edge coverage *)
  let bags2 = [| Bitset.of_list 3 [ 0; 1 ]; Bitset.of_list 3 [ 2 ] |] in
  let td2 = Td.make ~bags:bags2 ~parent:[| -1; 0 |] in
  check "edge uncovered" false (Td.valid_for_graph g td2)

let test_td_disconnected_graph () =
  let g = Graph.create 6 in
  Graph.add_edge g 0 1;
  Graph.add_edge g 3 4;
  (* vertices 2 and 5 isolated *)
  let rng = Random.State.make [| 7 |] in
  for _ = 1 to 20 do
    let sigma = Ordering.random rng 6 in
    let td = Td.of_ordering g sigma in
    check "valid on disconnected" true (Td.valid_for_graph g td)
  done

let prop_td_of_ordering_valid =
  QCheck.Test.make ~count:200 ~name:"of_ordering yields valid TD"
    QCheck.(make QCheck.Gen.(triple (1 -- 10) int int))
    (fun (n, seed, pseed) ->
      let rng = Random.State.make [| seed; pseed |] in
      let g = random_graph rng n (Random.State.float rng 1.0) in
      let sigma = Ordering.random rng n in
      let td = Td.of_ordering g sigma in
      Td.valid_for_graph g td)

let prop_eval_matches_td =
  QCheck.Test.make ~count:200 ~name:"Eval.tw_width = width of built TD"
    QCheck.(make QCheck.Gen.(triple (1 -- 10) int int))
    (fun (n, seed, pseed) ->
      let rng = Random.State.make [| seed; pseed |] in
      let g = random_graph rng n (Random.State.float rng 1.0) in
      let ws = Eval.of_graph g in
      let ok = ref true in
      for _ = 1 to 5 do
        let sigma = Ordering.random rng n in
        let td = Td.of_ordering g sigma in
        if Eval.tw_width ws sigma <> Td.width td then ok := false
      done;
      !ok)

(* --- generalized hypertree decompositions --- *)

let test_ghd_example5 () =
  (* Figure 2.7 exhibits a width-2 GHD for example 5; exact covering of
     a good ordering must reach 2 *)
  let h = example5 () in
  let best = ref max_int in
  let rng = Random.State.make [| 3 |] in
  for _ = 1 to 50 do
    let sigma = Ordering.random rng 6 in
    let ghd = Ghd.of_ordering h sigma ~cover:`Exact in
    check "ghd valid" true (Ghd.valid h ghd);
    best := min !best (Ghd.width ghd)
  done;
  check_int "width 2 reachable" 2 !best

let test_ghd_completion () =
  let h = example5 () in
  let sigma = Ordering.identity 6 in
  let ghd = Ghd.of_ordering h sigma ~cover:`Exact in
  let complete = Ghd.complete h ghd in
  check "complete flag" true (Ghd.is_complete h complete);
  check "still valid" true (Ghd.valid h complete);
  check_int "width preserved" (Ghd.width ghd) (Ghd.width complete);
  (* completion is idempotent *)
  let again = Ghd.complete h complete in
  check_int "idempotent" (Td.n_nodes complete.Ghd.td) (Td.n_nodes again.Ghd.td)

let test_ghd_acyclic_width_1 () =
  (* an acyclic hypergraph (a join tree exists) has ghw 1; a path of
     overlapping hyperedges is acyclic *)
  let h = Hypergraph.create ~n:5 [ [ 0; 1 ]; [ 1; 2 ]; [ 2; 3 ]; [ 3; 4 ] ] in
  let best = ref max_int in
  let rng = Random.State.make [| 5 |] in
  for _ = 1 to 30 do
    let sigma = Ordering.random rng 5 in
    let ghd = Ghd.of_ordering h sigma ~cover:`Exact in
    best := min !best (Ghd.width ghd)
  done;
  check_int "acyclic ghw 1" 1 !best

let prop_ghd_valid =
  QCheck.Test.make ~count:100 ~name:"of_ordering yields valid GHD"
    QCheck.(make QCheck.Gen.(pair (2 -- 8) int))
    (fun (n, seed) ->
      let rng = Random.State.make [| seed |] in
      let m = 1 + Random.State.int rng 6 in
      let edges =
        List.init m (fun _ ->
            List.init (1 + Random.State.int rng 3) (fun _ -> Random.State.int rng n))
      in
      (* ensure coverage *)
      let edges = edges @ [ List.init n Fun.id ] in
      let h = Hypergraph.create ~n edges in
      let sigma = Ordering.random rng n in
      let greedy = Ghd.of_ordering h sigma ~cover:(`Greedy (Some rng)) in
      let exact = Ghd.of_ordering h sigma ~cover:`Exact in
      Ghd.valid h greedy && Ghd.valid h exact
      && Ghd.width exact <= Ghd.width greedy)

let prop_eval_ghw_matches =
  QCheck.Test.make ~count:100 ~name:"Eval.ghw_width_exact = width of exact GHD"
    QCheck.(make QCheck.Gen.(pair (2 -- 8) int))
    (fun (n, seed) ->
      let rng = Random.State.make [| seed |] in
      let m = 1 + Random.State.int rng 5 in
      let edges =
        List.init m (fun _ ->
            List.init (1 + Random.State.int rng 3) (fun _ -> Random.State.int rng n))
        @ [ List.init n Fun.id ]
      in
      let h = Hypergraph.create ~n edges in
      let ws = Eval.of_hypergraph h in
      let sigma = Ordering.random rng n in
      let ghd = Ghd.of_ordering h sigma ~cover:`Exact in
      Eval.ghw_width_exact ws sigma = Ghd.width ghd)

(* --- heuristics --- *)

let test_heuristics_tree () =
  (* min-degree and min-fill find width 1 on trees *)
  let g = Graph.create 7 in
  List.iter
    (fun (u, v) -> Graph.add_edge g u v)
    [ (0, 1); (0, 2); (1, 3); (1, 4); (2, 5); (2, 6) ];
  let rng = Random.State.make [| 11 |] in
  let ws = Eval.of_graph g in
  check_int "min_fill tree" 1 (Eval.tw_width ws (Heur.min_fill rng g));
  check_int "min_degree tree" 1 (Eval.tw_width ws (Heur.min_degree rng g))

let test_mcs_chordal () =
  (* on a chordal graph MCS yields a perfect elimination ordering:
     width = clique number - 1.  Build two triangles sharing an edge. *)
  let g = Graph.create 4 in
  List.iter
    (fun (u, v) -> Graph.add_edge g u v)
    [ (0, 1); (1, 2); (0, 2); (1, 3); (2, 3) ];
  let rng = Random.State.make [| 13 |] in
  let ws = Eval.of_graph g in
  check_int "mcs chordal exact" 2 (Eval.tw_width ws (Heur.max_cardinality rng g))

let test_best_of () =
  let g = Graph.grid 3 3 in
  let rng = Random.State.make [| 17 |] in
  let ws = Eval.of_graph g in
  let sigma, w = Heur.best_of rng g ~trials:3 ~eval:(Eval.tw_width ws) in
  check "perm" true (Ordering.is_permutation sigma);
  check_int "3x3 grid min-fill reaches 3" 3 w


let test_fhw_clique () =
  (* fhw of K6 via any ordering: the largest bag is all 6 vertices,
     rho* = 3; smaller bags stay below *)
  let h = Hypergraph.of_graph (Graph.complete 6) in
  let ws = Eval.of_hypergraph h in
  let fhw = Eval.fhw_width ws (Ordering.identity 6) in
  Alcotest.(check (float 1e-6)) "K6 fhw" 3.0 fhw

let prop_fhw_le_ghw =
  QCheck.Test.make ~count:60 ~name:"fhw_width <= ghw_width_exact"
    QCheck.(make QCheck.Gen.(pair (2 -- 7) int))
    (fun (n, seed) ->
      let rng = Random.State.make [| seed |] in
      let m = 1 + Random.State.int rng 5 in
      let edges =
        List.init m (fun _ ->
            List.init (1 + Random.State.int rng 3) (fun _ -> Random.State.int rng n))
        @ [ List.init n Fun.id ]
      in
      let h = Hypergraph.create ~n edges in
      let ws = Eval.of_hypergraph h in
      let sigma = Ordering.random rng n in
      Eval.fhw_width ws sigma
      <= float_of_int (Eval.ghw_width_exact ws sigma) +. 1e-6)



let prop_heuristics_permutations =
  QCheck.Test.make ~count:100 ~name:"heuristic orderings are permutations"
    QCheck.(make QCheck.Gen.(pair (1 -- 12) int))
    (fun (n, seed) ->
      let rng = Random.State.make [| seed |] in
      let g = random_graph rng n 0.4 in
      Ordering.is_permutation (Heur.min_fill rng g)
      && Ordering.is_permutation (Heur.min_degree rng g)
      && Ordering.is_permutation (Heur.max_cardinality rng g))


let test_td_io_roundtrip () =
  let g = Graph.grid 3 3 in
  let td = Td.of_ordering g (Ordering.identity 9) in
  let text = Hd_core.Td_io.to_string ~n_vertices:9 td in
  let td2 = Hd_core.Td_io.parse_string text in
  check "roundtrip valid" true (Td.valid_for_graph g td2);
  check_int "roundtrip width" (Td.width td) (Td.width td2);
  check_int "roundtrip nodes" (Td.n_nodes td) (Td.n_nodes td2)

let test_td_io_parse_errors () =
  check "missing header" true
    (try
       ignore (Hd_core.Td_io.parse_string "b 1 1 2\n");
       false
     with Failure _ -> true);
  check "disconnected" true
    (try
       ignore (Hd_core.Td_io.parse_string "s td 2 1 2\nb 1 1\nb 2 2\n");
       false
     with Failure _ -> true)

let prop_td_io_roundtrip =
  QCheck.Test.make ~count:80 ~name:"PACE roundtrip preserves the decomposition"
    QCheck.(make QCheck.Gen.(triple (1 -- 10) int int))
    (fun (n, seed, pseed) ->
      let rng = Random.State.make [| seed; pseed |] in
      let g = random_graph rng n (Random.State.float rng 1.0) in
      let td = Td.of_ordering g (Ordering.random rng n) in
      let td2 = Hd_core.Td_io.parse_string (Hd_core.Td_io.to_string ~n_vertices:n td) in
      Td.valid_for_graph g td2 && Td.width td2 = Td.width td)

(* --- simplification and export --- *)

let test_simplify_path () =
  (* bucket elimination on a path makes one bag per vertex; half are
     subsets of their neighbour and vanish *)
  let g = Graph.path 6 in
  let td = Td.of_ordering g (Ordering.identity 6) in
  let small = Td.simplify td in
  check "still valid" true (Td.valid_for_graph g small);
  check_int "width preserved" (Td.width td) (Td.width small);
  check "fewer nodes" true (Td.n_nodes small < Td.n_nodes td);
  (* idempotent *)
  check_int "idempotent" (Td.n_nodes small) (Td.n_nodes (Td.simplify small))

let prop_simplify_sound =
  QCheck.Test.make ~count:150 ~name:"simplify preserves validity and width"
    QCheck.(make QCheck.Gen.(triple (1 -- 10) int int))
    (fun (n, seed, pseed) ->
      let rng = Random.State.make [| seed; pseed |] in
      let g = random_graph rng n (Random.State.float rng 1.0) in
      let td = Td.of_ordering g (Ordering.random rng n) in
      let small = Td.simplify td in
      Td.valid_for_graph g small
      && Td.width small = Td.width td
      && Td.n_nodes small <= Td.n_nodes td)

let test_to_dot () =
  let g = Graph.path 3 in
  let td = Td.of_ordering g (Ordering.identity 3) in
  let dot = Td.to_dot ~name:"p3" td in
  check "has graph decl" true
    (String.length dot > 10 && String.sub dot 0 8 = "graph p3");
  (* one node line per bag, one edge line per tree edge *)
  let count_substring needle =
    let rec go i acc =
      if i + String.length needle > String.length dot then acc
      else if String.sub dot i (String.length needle) = needle then
        go (i + 1) (acc + 1)
      else go (i + 1) acc
    in
    go 0 0
  in
  check_int "edges" (Td.n_nodes td - 1) (count_substring " -- ")

(* --- incremental heuristics vs the naive reference --- *)

module Obs = Hd_obs.Obs

let with_obs f =
  Obs.enable ();
  Obs.reset ();
  Fun.protect ~finally:(fun () -> Obs.disable ()) f

let counter name = Obs.Counter.value (Obs.Counter.make name)

let same_ordering seed g heur naive =
  let a = heur (Random.State.make [| seed |]) g in
  let b = naive (Random.State.make [| seed |]) g in
  a = b

let prop_incremental_min_fill_identical =
  QCheck.Test.make ~count:120
    ~name:"incremental min_fill byte-identical to Naive"
    QCheck.(make QCheck.Gen.(triple (1 -- 14) int int))
    (fun (n, gseed, seed) ->
      let rng = Random.State.make [| gseed |] in
      let g = random_graph rng n (Random.State.float rng 1.0) in
      same_ordering seed g Heur.min_fill Heur.Naive.min_fill)

let prop_incremental_min_degree_identical =
  QCheck.Test.make ~count:120
    ~name:"incremental min_degree byte-identical to Naive"
    QCheck.(make QCheck.Gen.(triple (1 -- 14) int int))
    (fun (n, gseed, seed) ->
      let rng = Random.State.make [| gseed |] in
      let g = random_graph rng n (Random.State.float rng 1.0) in
      same_ordering seed g Heur.min_degree Heur.Naive.min_degree)

let test_incremental_identical_instances () =
  (* the bundled named instances, where structure is less uniform than
     G(n,p) *)
  List.iter
    (fun name ->
      match Hd_instances.Graphs.by_name name with
      | None -> Alcotest.failf "unknown instance %s" name
      | Some g ->
          check
            (name ^ " min_fill identical")
            true
            (same_ordering 7 g Heur.min_fill Heur.Naive.min_fill);
          check
            (name ^ " min_degree identical")
            true
            (same_ordering 7 g Heur.min_degree Heur.Naive.min_degree))
    [ "myciel4"; "queen5_5"; "grid6" ]

let test_dirty_set_counters () =
  with_obs @@ fun () ->
  (* on a sparse graph the dirty-set maintenance must recompute far
     fewer keys than the naive n^2/2 rescans, and must actually skip
     clean vertices *)
  let g = Graph.grid 10 10 in
  let n = Graph.n g in
  ignore (Heur.min_fill (Random.State.make [| 3 |]) g);
  let recomputes = counter "ordering.key_recomputes" in
  let skips = counter "ordering.dirty_skips" in
  check "some keys recomputed" true (recomputes > 0);
  check "clean vertices skipped" true (skips > 0);
  check
    (Printf.sprintf "recomputes %d below naive n^2/2 = %d" recomputes
       (n * n / 2))
    true
    (recomputes < (n * n / 2))

let test_setcover_memo_hits () =
  with_obs @@ fun () ->
  let h = example5 () in
  let ws = Eval.of_hypergraph h in
  let sigma = Ordering.identity (Hypergraph.n_vertices h) in
  let w1 = Eval.ghw_width ws sigma in
  let misses_after_first = counter "setcover.memo_misses" in
  let w2 = Eval.ghw_width ws sigma in
  check_int "memoised width unchanged" w1 w2;
  check "first eval misses" true (misses_after_first > 0);
  check "second eval hits" true (counter "setcover.memo_hits" > 0);
  check_int "second eval adds no misses" misses_after_first
    (counter "setcover.memo_misses");
  Eval.reset_memo ws;
  ignore (Eval.ghw_width ws sigma);
  check "reset_memo forces recomputation" true
    (counter "setcover.memo_misses" > misses_after_first)

let test_memo_no_integral_frac_collision () =
  (* regression: integral and fractional cover costs must live in
     separate memo tables.  On the triangle the bag {0,1,2} costs 2
     integral edges but only 3/2 fractionally — a shared table keyed
     on the bag alone would let whichever mode ran first poison the
     other.  Interleave the two modes on one workspace and re-check. *)
  with_obs @@ fun () ->
  let h = Hypergraph.create ~n:3 [ [ 0; 1 ]; [ 1; 2 ]; [ 0; 2 ] ] in
  let ws = Eval.of_hypergraph h in
  let sigma = Ordering.identity 3 in
  let half3 = Hd_lp.Rat.make 3 2 in
  check_int "ghw first" 2 (Eval.ghw_width_exact ws sigma);
  check "fhw after ghw" true
    (Hd_lp.Rat.equal half3 (Eval.fhw_width_q ws sigma));
  check_int "ghw after fhw (memoised)" 2 (Eval.ghw_width_exact ws sigma);
  check "fhw again (memoised)" true
    (Hd_lp.Rat.equal half3 (Eval.fhw_width_q ws sigma));
  let misses = counter "lp.memo_misses" in
  check "fractional memo populated" true (misses > 0);
  ignore (Eval.fhw_width_q ws sigma);
  check "repeat fhw hits the fractional memo" true
    (counter "lp.memo_hits" > 0);
  check_int "repeat fhw adds no misses" misses (counter "lp.memo_misses")

let () =
  Alcotest.run "core"
    [
      ("ordering", [ Alcotest.test_case "permutations" `Quick test_ordering ]);
      ( "tree decomposition",
        [
          Alcotest.test_case "path" `Quick test_td_path;
          Alcotest.test_case "clique" `Quick test_td_clique;
          Alcotest.test_case "cycle" `Quick test_td_cycle_orderings;
          Alcotest.test_case "structure checks" `Quick test_td_structure_checks;
          Alcotest.test_case "invalid decompositions" `Quick test_td_invalid_decomposition;
          Alcotest.test_case "disconnected graphs" `Quick test_td_disconnected_graph;
        ] );
      ( "ghd",
        [
          Alcotest.test_case "example 5 width 2" `Quick test_ghd_example5;
          Alcotest.test_case "completion" `Quick test_ghd_completion;
          Alcotest.test_case "acyclic width 1" `Quick test_ghd_acyclic_width_1;
        ] );
      ( "heuristics",
        [
          Alcotest.test_case "trees" `Quick test_heuristics_tree;
          Alcotest.test_case "mcs on chordal" `Quick test_mcs_chordal;
          Alcotest.test_case "best_of" `Quick test_best_of;
        ] );
      ( "incremental heuristics",
        [
          Alcotest.test_case "bundled instances identical" `Quick
            test_incremental_identical_instances;
          Alcotest.test_case "dirty-set counters" `Quick test_dirty_set_counters;
          Alcotest.test_case "set-cover memo" `Quick test_setcover_memo_hits;
        ]
        @ List.map QCheck_alcotest.to_alcotest
            [
              prop_incremental_min_fill_identical;
              prop_incremental_min_degree_identical;
            ] );
      ( "fractional",
        [
          Alcotest.test_case "K6 fhw" `Quick test_fhw_clique;
          Alcotest.test_case "integral/fractional memo separation" `Quick
            test_memo_no_integral_frac_collision;
        ] );
      ( "simplify",
        [
          Alcotest.test_case "path" `Quick test_simplify_path;
          Alcotest.test_case "to_dot" `Quick test_to_dot;
        ]
        @ List.map QCheck_alcotest.to_alcotest [ prop_simplify_sound ] );
      ( "pace io",
        [
          Alcotest.test_case "roundtrip" `Quick test_td_io_roundtrip;
          Alcotest.test_case "parse errors" `Quick test_td_io_parse_errors;
        ]
        @ List.map QCheck_alcotest.to_alcotest [ prop_td_io_roundtrip ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_td_of_ordering_valid;
            prop_eval_matches_td;
            prop_ghd_valid;
            prop_eval_ghw_matches;
            prop_fhw_le_ghw;
            prop_heuristics_permutations;
          ] );
    ]
