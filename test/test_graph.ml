module Graph = Hd_graph.Graph
module Elim_graph = Hd_graph.Elim_graph
module Bitset = Hd_graph.Bitset
module Contract_graph = Hd_graph.Contract_graph
module Dimacs = Hd_graph.Dimacs
module Chordal = Hd_graph.Chordal

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_list = Alcotest.(check (list int))

let test_build () =
  let g = Graph.create 4 in
  Graph.add_edge g 0 1;
  Graph.add_edge g 1 2;
  Graph.add_edge g 1 2;
  (* duplicate ignored *)
  Graph.add_edge g 3 3;
  (* self loop ignored *)
  check_int "m" 2 (Graph.m g);
  check "mem" true (Graph.mem_edge g 1 0);
  check "not mem" false (Graph.mem_edge g 0 2);
  check_int "degree 1" 2 (Graph.degree g 1);
  check_list "neighbors" [ 0; 2 ] (Graph.neighbors g 1)

let test_generators () =
  let k5 = Graph.complete 5 in
  check_int "K5 edges" 10 (Graph.m k5);
  check "K5 clique" true (Graph.is_clique k5 (Bitset.full 5));
  let c6 = Graph.cycle 6 in
  check_int "C6 edges" 6 (Graph.m c6);
  check_int "C6 degree" 2 (Graph.degree c6 0);
  let p4 = Graph.path 4 in
  check_int "P4 edges" 3 (Graph.m p4);
  let g33 = Graph.grid 3 3 in
  check_int "grid3 edges" 12 (Graph.m g33);
  check_int "grid3 corner degree" 2 (Graph.degree g33 0);
  check_int "grid3 center degree" 4 (Graph.degree g33 4)

let test_components () =
  let g = Graph.create 5 in
  Graph.add_edge g 0 1;
  Graph.add_edge g 2 3;
  check "not connected" false (Graph.is_connected g);
  Alcotest.(check (list (list int)))
    "components"
    [ [ 0; 1 ]; [ 2; 3 ]; [ 4 ] ]
    (Graph.components g);
  Graph.add_edge g 1 2;
  Graph.add_edge g 3 4;
  check "connected" true (Graph.is_connected g)

let test_eliminate_restore () =
  (* the worked example of Figure 5.2: eliminating a vertex connects
     its neighbours *)
  let g = Graph.cycle 4 in
  let eg = Elim_graph.of_graph g in
  check_int "fill of cycle vertex" 1 (Elim_graph.fill_count eg 0);
  Elim_graph.eliminate eg 0;
  check "fill edge added" true (Elim_graph.mem_edge eg 1 3);
  check_int "alive" 3 (Elim_graph.n_alive eg);
  check "dead" false (Elim_graph.is_alive eg 0);
  Elim_graph.restore_last eg;
  check "fill edge removed" false (Elim_graph.mem_edge eg 1 3);
  check "alive again" true (Elim_graph.is_alive eg 0);
  check_int "degree restored" 2 (Elim_graph.degree eg 0)

let test_restore_roundtrip_exact () =
  let rng = Random.State.make [| 42 |] in
  for _trial = 1 to 25 do
    let n = 2 + Random.State.int rng 12 in
    let g = Graph.create n in
    for u = 0 to n - 1 do
      for v = u + 1 to n - 1 do
        if Random.State.float rng 1.0 < 0.4 then Graph.add_edge g u v
      done
    done;
    let eg = Elim_graph.of_graph g in
    let order = Array.init n (fun i -> i) in
    for i = n - 1 downto 1 do
      let j = Random.State.int rng (i + 1) in
      let t = order.(i) in
      order.(i) <- order.(j);
      order.(j) <- t
    done;
    let steps = Random.State.int rng n in
    for i = 0 to steps - 1 do
      Elim_graph.eliminate eg order.(i)
    done;
    Elim_graph.restore_all eg;
    (* graph must be exactly the original *)
    let same = ref true in
    for u = 0 to n - 1 do
      for v = 0 to n - 1 do
        if u <> v && Graph.mem_edge g u v <> Elim_graph.mem_edge eg u v then
          same := false
      done
    done;
    check "roundtrip restores adjacency" true !same;
    check_int "roundtrip restores count" n (Elim_graph.n_alive eg)
  done

let test_simplicial () =
  (* star + triangle: in K4 minus an edge, the two clique vertices are
     simplicial *)
  let g = Graph.complete 4 in
  let eg = Elim_graph.of_graph g in
  check "clique vertex simplicial" true (Elim_graph.is_simplicial eg 0);
  let g2 = Graph.cycle 4 in
  let eg2 = Elim_graph.of_graph g2 in
  check "cycle vertex not simplicial" false (Elim_graph.is_simplicial eg2 0);
  check "cycle vertex almost simplicial" true
    (Elim_graph.is_almost_simplicial eg2 0);
  (match Elim_graph.find_reducible eg2 ~lb:2 with
  | Some _ -> ()
  | None -> Alcotest.fail "C4 vertex is strongly almost simplicial at lb=2");
  check "no reduction at lb=1" true
    (Elim_graph.find_reducible eg2 ~lb:1 = None)

let test_contract () =
  let g = Graph.cycle 5 in
  let cg = Contract_graph.of_graph g in
  Contract_graph.contract cg 0 1;
  (* contracting an edge of C5 yields C4 *)
  check_int "alive" 4 (Contract_graph.n_alive cg);
  check_int "degree" 2 (Contract_graph.degree cg 0);
  check "merged adjacency" true (Contract_graph.mem_edge cg 0 2);
  check "no self loop" false (Contract_graph.mem_edge cg 0 0)

let test_dimacs_roundtrip () =
  let g = Graph.grid 3 2 in
  let text = Dimacs.to_string g in
  let g' = Dimacs.parse_string text in
  check_int "n" (Graph.n g) (Graph.n g');
  check_int "m" (Graph.m g) (Graph.m g');
  Alcotest.(check (list (pair int int))) "edges" (Graph.edges g) (Graph.edges g')

let test_dimacs_parse () =
  let g =
    Dimacs.parse_string "c a comment\np edge 3 2\ne 1 2\ne 2 3\n"
  in
  check_int "n" 3 (Graph.n g);
  check_int "m" 2 (Graph.m g);
  check "edge" true (Graph.mem_edge g 0 1)

(* property: eliminating a vertex makes its old neighbourhood a clique *)
let prop_elimination_clique =
  QCheck.Test.make ~count:100 ~name:"elimination creates clique"
    QCheck.(make QCheck.Gen.(pair (2 -- 10) int))
    (fun (n, seed) ->
      let rng = Random.State.make [| seed |] in
      let g = Graph.create n in
      for u = 0 to n - 1 do
        for v = u + 1 to n - 1 do
          if Random.State.float rng 1.0 < 0.5 then Graph.add_edge g u v
        done
      done;
      let eg = Elim_graph.of_graph g in
      let v = Random.State.int rng n in
      let nbrs = Elim_graph.neighbors eg v in
      Elim_graph.eliminate eg v;
      List.for_all
        (fun a -> List.for_all (fun b -> a = b || Elim_graph.mem_edge eg a b) nbrs)
        nbrs)



let test_trail_depth () =
  let g = Graph.complete 4 in
  let eg = Elim_graph.of_graph g in
  check_int "depth 0" 0 (Elim_graph.depth eg);
  check "no last step" true (Elim_graph.last_step eg = None);
  Elim_graph.eliminate eg 0;
  Elim_graph.eliminate eg 1;
  check_int "depth 2" 2 (Elim_graph.depth eg);
  (match Elim_graph.last_step eg with
  | Some step ->
      check_int "last vertex" 1 step.Elim_graph.vertex;
      check_list "last nbrs" [ 2; 3 ] step.Elim_graph.nbrs;
      check "K4: no fill" true (step.Elim_graph.fill = [])
  | None -> Alcotest.fail "expected a step");
  check_int "trail length" 2 (List.length (Elim_graph.trail eg));
  Alcotest.check_raises "restore past empty"
    (Invalid_argument "Elim_graph.restore_last: nothing to restore")
    (fun () ->
      Elim_graph.restore_all eg;
      Elim_graph.restore_last eg)

let test_graph_copy_independent () =
  let g = Graph.path 4 in
  let g2 = Graph.copy g in
  Graph.add_edge g2 0 3;
  check "copy isolated" false (Graph.mem_edge g 0 3);
  check "copy has edge" true (Graph.mem_edge g2 0 3)

let test_degrees () =
  let g = Graph.complete 5 in
  check_int "max degree" 4 (Graph.max_degree g);
  check_int "min degree" 4 (Graph.min_degree g);
  check_int "empty max degree" 0 (Graph.max_degree (Graph.create 0));
  check "min_degree empty raises" true
    (try
       ignore (Graph.min_degree (Graph.create 0));
       false
     with Invalid_argument _ -> true)

(* --- chordal graphs --- *)

let test_chordal_basics () =
  check "tree chordal" true (Chordal.is_chordal (Graph.path 6));
  check "clique chordal" true (Chordal.is_chordal (Graph.complete 5));
  check "C4 not chordal" false (Chordal.is_chordal (Graph.cycle 4));
  check "C6 not chordal" false (Chordal.is_chordal (Graph.cycle 6));
  check "triangle chordal" true (Chordal.is_chordal (Graph.cycle 3));
  check "empty chordal" true (Chordal.is_chordal (Graph.create 3))

let test_chordal_clique_number () =
  Alcotest.(check (option int)) "K5" (Some 5)
    (Chordal.max_clique_size_if_chordal (Graph.complete 5));
  Alcotest.(check (option int)) "path" (Some 2)
    (Chordal.max_clique_size_if_chordal (Graph.path 5));
  Alcotest.(check (option int)) "C5 none" None
    (Chordal.max_clique_size_if_chordal (Graph.cycle 5))

let test_peo_checker () =
  (* on P3 = 0-1-2: eliminating the middle vertex first adds fill *)
  let g = Graph.path 3 in
  check "ends-first is PEO" true
    (Chordal.is_perfect_elimination_ordering g [| 1; 2; 0 |]);
  check "middle-first is not" false
    (Chordal.is_perfect_elimination_ordering g [| 0; 2; 1 |])

let prop_triangulation_chordal =
  QCheck.Test.make ~count:100 ~name:"triangulate yields chordal supergraph + PEO"
    QCheck.(make QCheck.Gen.(pair (2 -- 12) int))
    (fun (n, seed) ->
      let rng = Random.State.make [| seed |] in
      let g = Graph.create n in
      for u = 0 to n - 1 do
        for v = u + 1 to n - 1 do
          if Random.State.float rng 1.0 < 0.35 then Graph.add_edge g u v
        done
      done;
      let chordal, sigma = Chordal.triangulate rng g in
      Chordal.is_chordal chordal
      && Chordal.is_perfect_elimination_ordering chordal sigma
      && List.for_all (fun (u, v) -> Graph.mem_edge chordal u v) (Graph.edges g))

let prop_chordal_treewidth =
  QCheck.Test.make ~count:30 ~name:"chordal treewidth = clique number - 1"
    QCheck.(make QCheck.Gen.(pair (2 -- 8) int))
    (fun (n, seed) ->
      let rng = Random.State.make [| seed |] in
      let g = Graph.create n in
      for u = 0 to n - 1 do
        for v = u + 1 to n - 1 do
          if Random.State.float rng 1.0 < 0.4 then Graph.add_edge g u v
        done
      done;
      let chordal, _ = Chordal.triangulate rng g in
      match Chordal.max_clique_size_if_chordal chordal with
      | None -> false
      | Some clique ->
          let tw =
            match
              (Hd_search.Astar_tw.solve chordal).Hd_search.Search_types.outcome
            with
            | Hd_search.Search_types.Exact w -> w
            | Hd_search.Search_types.Bounds _ -> -1
          in
          tw = clique - 1)

(* --- bucket queues --- *)

let test_bucket_queue_basics () =
  let module Bq = Hd_graph.Bucket_queue in
  let bq = Bq.create 6 in
  check_int "capacity" 6 (Bq.capacity bq);
  check_int "empty" 0 (Bq.cardinal bq);
  Bq.insert bq 0 3;
  Bq.insert bq 1 1;
  Bq.insert bq 2 3;
  Bq.insert bq 3 0;
  check_int "cardinal" 4 (Bq.cardinal bq);
  check "mem" true (Bq.mem bq 2);
  check "not mem" false (Bq.mem bq 5);
  check_int "priority" 3 (Bq.priority bq 0);
  check_int "min" 0 (Bq.min_priority bq);
  Bq.remove bq 3;
  check_int "min after remove" 1 (Bq.min_priority bq);
  Bq.update bq 1 7;
  (* larger than any bucket seen: directory must grow *)
  check_int "min after increase-key" 3 (Bq.min_priority bq);
  Bq.update bq 2 0;
  check_int "min after decrease-key" 0 (Bq.min_priority bq);
  let seen = ref [] in
  Bq.iter_bucket (fun v -> seen := v :: !seen) bq 3;
  check_list "bucket 3" [ 0 ] !seen;
  Bq.remove bq 0;
  Bq.remove bq 1;
  Bq.remove bq 2;
  check_int "drained" 0 (Bq.cardinal bq)

let prop_bucket_queue_matches_naive =
  (* drive a queue with a random op sequence; cardinal/membership/
     priorities/min must match a naive association list *)
  QCheck.Test.make ~count:200 ~name:"bucket queue = naive priority map"
    QCheck.(make QCheck.Gen.(pair (1 -- 12) int))
    (fun (n, seed) ->
      let module Bq = Hd_graph.Bucket_queue in
      let rng = Random.State.make [| seed |] in
      let bq = Bq.create n in
      let model = Hashtbl.create 16 in
      let ok = ref true in
      for _ = 1 to 120 do
        let v = Random.State.int rng n in
        let p = Random.State.int rng 10 in
        (match (Hashtbl.mem model v, Random.State.int rng 3) with
        | false, _ -> Bq.insert bq v p; Hashtbl.replace model v p
        | true, 0 -> Bq.remove bq v; Hashtbl.remove model v
        | true, _ -> Bq.update bq v p; Hashtbl.replace model v p);
        ok := !ok && Bq.cardinal bq = Hashtbl.length model;
        Hashtbl.iter
          (fun v p -> ok := !ok && Bq.mem bq v && Bq.priority bq v = p)
          model;
        if Hashtbl.length model > 0 then begin
          let m = Hashtbl.fold (fun _ p acc -> min p acc) model max_int in
          ok := !ok && Bq.min_priority bq = m;
          (* the min bucket holds exactly the model's minimal items *)
          let bucket = ref [] in
          Bq.iter_bucket (fun v -> bucket := v :: !bucket) bq m;
          let expect =
            Hashtbl.fold (fun v p acc -> if p = m then v :: acc else acc) model []
          in
          ok :=
            !ok
            && List.sort compare !bucket = List.sort compare expect
        end
      done;
      !ok)

(* --- alive iteration and canonical hashing --- *)

let test_iter_fold_alive () =
  let g = Graph.grid 3 3 in
  let eg = Elim_graph.of_graph g in
  Elim_graph.eliminate eg 4;
  Elim_graph.eliminate eg 0;
  let via_iter = ref [] in
  Elim_graph.iter_alive (fun v -> via_iter := v :: !via_iter) eg;
  check_list "iter_alive = alive_list" (Elim_graph.alive_list eg)
    (List.rev !via_iter);
  let via_fold =
    List.rev (Elim_graph.fold_alive (fun v acc -> v :: acc) eg [])
  in
  check_list "fold_alive = alive_list" (Elim_graph.alive_list eg) via_fold

let test_fnv_hash () =
  (* canonical: content decides, build order doesn't *)
  let a = Bitset.of_list 100 [ 3; 97; 41 ] in
  let b = Bitset.of_list 100 [ 97; 3; 41 ] in
  check "same content, same hash" true (Bitset.fnv_hash a = Bitset.fnv_hash b);
  check "non-negative" true (Bitset.fnv_hash a >= 0);
  Bitset.remove b 41;
  check "different content, different hash" true
    (Bitset.fnv_hash a <> Bitset.fnv_hash b);
  check_int "empty set hash is the offset basis" 0xbf29ce484222325
    (Bitset.fnv_hash (Bitset.create 10))

let () =
  Alcotest.run "graph"
    [
      ( "graph",
        [
          Alcotest.test_case "build" `Quick test_build;
          Alcotest.test_case "generators" `Quick test_generators;
          Alcotest.test_case "components" `Quick test_components;
        ] );
      ( "elimination",
        [
          Alcotest.test_case "eliminate/restore" `Quick test_eliminate_restore;
          Alcotest.test_case "roundtrip random" `Quick test_restore_roundtrip_exact;
          Alcotest.test_case "simplicial tests" `Quick test_simplicial;
          Alcotest.test_case "trail and depth" `Quick test_trail_depth;
        ] );
      ( "graph extras",
        [
          Alcotest.test_case "copy independence" `Quick test_graph_copy_independent;
          Alcotest.test_case "degrees" `Quick test_degrees;
        ] );
      ( "bucket queue",
        [ Alcotest.test_case "basics" `Quick test_bucket_queue_basics ]
        @ List.map QCheck_alcotest.to_alcotest
            [ prop_bucket_queue_matches_naive ] );
      ( "alive iteration",
        [
          Alcotest.test_case "iter/fold alive" `Quick test_iter_fold_alive;
          Alcotest.test_case "fnv hash" `Quick test_fnv_hash;
        ] );
      ("contract", [ Alcotest.test_case "contract C5" `Quick test_contract ]);
      ( "dimacs",
        [
          Alcotest.test_case "roundtrip" `Quick test_dimacs_roundtrip;
          Alcotest.test_case "parse" `Quick test_dimacs_parse;
        ] );
      ( "chordal",
        [
          Alcotest.test_case "recognition" `Quick test_chordal_basics;
          Alcotest.test_case "clique number" `Quick test_chordal_clique_number;
          Alcotest.test_case "PEO checker" `Quick test_peo_checker;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_elimination_clique; prop_triangulation_chordal; prop_chordal_treewidth ]
      );
    ]
