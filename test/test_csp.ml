module Graph = Hd_graph.Graph
module Relation = Hd_csp.Relation
module Csp = Hd_csp.Csp
module Join_tree = Hd_csp.Join_tree
module Solver = Hd_csp.Solver
module Models = Hd_csp.Models
module Adaptive = Hd_csp.Adaptive_consistency
module Td = Hd_core.Tree_decomposition
module Ghd = Hd_core.Ghd
module Ordering = Hd_core.Ordering

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* --- relations --- *)

let r_ab = Relation.make ~scope:[| 0; 1 |] [ [| 1; 2 |]; [| 1; 3 |]; [| 2; 3 |] ]
let r_bc = Relation.make ~scope:[| 1; 2 |] [ [| 2; 5 |]; [| 3; 6 |] ]

let test_relation_basics () =
  check_int "arity" 2 (Relation.arity r_ab);
  check_int "cardinality" 3 (Relation.cardinality r_ab);
  check "mem" true (Relation.mem r_ab [| 1; 3 |]);
  check "not mem" false (Relation.mem r_ab [| 3; 1 |]);
  check_int "value" 2 (Relation.value r_ab [| 1; 2 |] ~var:1);
  (* dedup *)
  let r = Relation.make ~scope:[| 0 |] [ [| 1 |]; [| 1 |]; [| 2 |] ] in
  check_int "deduped" 2 (Relation.cardinality r)

let test_relation_join () =
  let j = Relation.join r_ab r_bc in
  Alcotest.(check (array int)) "join scope" [| 0; 1; 2 |] (Relation.scope j);
  check_int "join size" 3 (Relation.cardinality j);
  check "tuple" true (Relation.mem j [| 1; 2; 5 |]);
  check "tuple" true (Relation.mem j [| 2; 3; 6 |]);
  (* join with disjoint scope = cartesian product *)
  let r_d = Relation.make ~scope:[| 5 |] [ [| 9 |]; [| 8 |] ] in
  check_int "cartesian" 6 (Relation.cardinality (Relation.join r_ab r_d))

let test_relation_semijoin () =
  let s = Relation.semijoin r_ab r_bc in
  check_int "semijoin keeps matched" 3 (Relation.cardinality s);
  let r_bc' = Relation.make ~scope:[| 1; 2 |] [ [| 2; 5 |] ] in
  let s' = Relation.semijoin r_ab r_bc' in
  check_int "semijoin filters" 1 (Relation.cardinality s');
  check "kept the right tuple" true (Relation.mem s' [| 1; 2 |])

let test_relation_project_select_full () =
  let p = Relation.project r_ab [| 1 |] in
  check_int "project dedups" 2 (Relation.cardinality p);
  let s = Relation.select r_ab ~var:0 ~value:1 in
  check_int "select" 2 (Relation.cardinality s);
  let f = Relation.full ~scope:[| 0; 1 |] ~domains:[| [| 0; 1 |]; [| 0; 1; 2 |] |] in
  check_int "full" 6 (Relation.cardinality f)

let prop_join_commutes =
  QCheck.Test.make ~count:100 ~name:"join cardinality commutes"
    QCheck.(make QCheck.Gen.(pair int int))
    (fun (s1, s2) ->
      let rng = Random.State.make [| s1; s2 |] in
      let mk scope =
        Relation.make ~scope
          (List.init
             (1 + Random.State.int rng 6)
             (fun _ ->
               Array.init (Array.length scope) (fun _ -> Random.State.int rng 3)))
      in
      let a = mk [| 0; 1 |] and b = mk [| 1; 2 |] in
      Relation.cardinality (Relation.join a b)
      = Relation.cardinality (Relation.join b a))

(* --- CSP basics --- *)

let test_australia () =
  let csp = Models.australia () in
  check_int "vars" 7 (Csp.n_variables csp);
  check_int "constraints" 9 (Csp.n_constraints csp);
  (match Csp.solve_backtracking csp with
  | None -> Alcotest.fail "Australia is 3-colorable"
  | Some a ->
      check "consistent" true (Csp.consistent csp a);
      (* the paper's example solution is also valid *)
      check "paper solution" true
        (Csp.consistent csp [| 0; 1; 0; 2; 1; 0; 1 |]));
  (* SA with the ring path WA-NT-Q-NSW-V around it: 3 choices for SA,
     2 alternating colorings of the path, 3 free choices for TAS *)
  check_int "solution count" 18 (Csp.count_solutions csp)

let test_example5 () =
  let csp = Models.example5 () in
  match Csp.solve_backtracking csp with
  | None -> Alcotest.fail "example 5 is satisfiable"
  | Some a ->
      check "consistent" true (Csp.consistent csp a);
      (* x1=a x2=b x3=c x4=c x5=b x6=c is the run of Figure 2.8 *)
      check "figure 2.8 solution" true
        (Csp.consistent csp [| 0; 1; 2; 2; 1; 2 |])

let test_sat_model () =
  (* (x1 | -x2) & (x2 | x3) & (-x1 | -x3) *)
  let csp = Models.sat [ [ 1; -2 ]; [ 2; 3 ]; [ -1; -3 ] ] ~n_vars:3 in
  (match Csp.solve_backtracking csp with
  | None -> Alcotest.fail "satisfiable"
  | Some a -> check "consistent" true (Csp.consistent csp a));
  (* unsatisfiable: x & -x *)
  let unsat = Models.sat [ [ 1 ]; [ -1 ] ] ~n_vars:1 in
  check "unsat detected" true (Csp.solve_backtracking unsat = None)

let test_nqueens () =
  check_int "4-queens solutions" 2 (Csp.count_solutions (Models.n_queens 4));
  check_int "5-queens solutions" 10 (Csp.count_solutions (Models.n_queens 5));
  check "3-queens unsat" true (Csp.solve_backtracking (Models.n_queens 3) = None)

(* --- acyclic solving --- *)

let test_acyclic_solving_figure () =
  (* a path-shaped join tree *)
  let relations =
    [|
      Relation.make ~scope:[| 0; 1 |] [ [| 0; 1 |]; [| 1; 1 |] ];
      Relation.make ~scope:[| 1; 2 |] [ [| 1; 0 |]; [| 2; 2 |] ];
      Relation.make ~scope:[| 2; 3 |] [ [| 0; 5 |] ];
    |]
  in
  let jt = { Join_tree.relations; parent = [| -1; 0; 1 |] } in
  check "join tree" true (Join_tree.is_join_tree jt);
  match Join_tree.acyclic_solve jt ~n_vars:4 with
  | None -> Alcotest.fail "satisfiable"
  | Some a ->
      Alcotest.(check (array int)) "unique solution" [| 0; 1; 0; 5 |] a

let test_acyclic_unsat () =
  let relations =
    [|
      Relation.make ~scope:[| 0 |] [ [| 1 |] ];
      Relation.make ~scope:[| 0 |] [ [| 2 |] ];
    |]
  in
  let jt = { Join_tree.relations; parent = [| -1; 0 |] } in
  check "unsat" true (Join_tree.acyclic_solve jt ~n_vars:1 = None)

(* --- solving from decompositions --- *)

let decompose_and_solve csp seed =
  let td = Solver.solve csp ~strategy:`Td ~seed in
  let ghd = Solver.solve csp ~strategy:`Ghd ~seed in
  (td, ghd)

let test_solve_australia_from_decompositions () =
  let csp = Models.australia () in
  let td, ghd = decompose_and_solve csp 1 in
  (match td with
  | Some a -> check "TD solution consistent" true (Csp.consistent csp a)
  | None -> Alcotest.fail "TD solving failed");
  match ghd with
  | Some a -> check "GHD solution consistent" true (Csp.consistent csp a)
  | None -> Alcotest.fail "GHD solving failed"

let test_solve_example5_from_decompositions () =
  let csp = Models.example5 () in
  let td, ghd = decompose_and_solve csp 2 in
  check "TD solves" true (td <> None);
  check "GHD solves" true (ghd <> None)

let test_solve_explicit_decompositions () =
  let csp = Models.example5 () in
  let h = Csp.hypergraph csp in
  let rng = Random.State.make [| 9 |] in
  for _ = 1 to 10 do
    let sigma = Ordering.random rng (Csp.n_variables csp) in
    let td = Td.of_ordering_hypergraph h sigma in
    (match Solver.solve_with_td csp td with
    | Some a -> check "TD random ordering" true (Csp.consistent csp a)
    | None -> Alcotest.fail "TD solving failed");
    let ghd = Ghd.of_ordering h sigma ~cover:`Exact in
    match Solver.solve_with_ghd csp ghd with
    | Some a -> check "GHD random ordering" true (Csp.consistent csp a)
    | None -> Alcotest.fail "GHD solving failed"
  done

let prop_decomposition_solving_agrees =
  QCheck.Test.make ~count:60
    ~name:"TD/GHD solving agrees with backtracking on satisfiability"
    QCheck.(make QCheck.Gen.(pair int (0 -- 1000)))
    (fun (seed, tseed) ->
      let tightness = float_of_int tseed /. 1000.0 in
      let csp =
        Models.random_csp ~seed ~n_vars:6 ~domain_size:3 ~n_constraints:5
          ~arity:2 ~tightness
      in
      let oracle = Csp.solve_backtracking csp <> None in
      let td = Solver.solve csp ~strategy:`Td ~seed in
      let ghd = Solver.solve csp ~strategy:`Ghd ~seed in
      let sat_matches r =
        match r with
        | Some a -> oracle && Csp.consistent csp a
        | None -> not oracle
      in
      sat_matches td && sat_matches ghd)

let prop_sat_via_ghd =
  QCheck.Test.make ~count:40 ~name:"random 3-SAT via GHD = backtracking"
    QCheck.(make QCheck.Gen.(pair int (3 -- 6)))
    (fun (seed, n_vars) ->
      let rng = Random.State.make [| seed |] in
      let n_clauses = 2 + Random.State.int rng 8 in
      let clauses =
        List.init n_clauses (fun _ ->
            List.init 3 (fun _ ->
                let v = 1 + Random.State.int rng n_vars in
                if Random.State.bool rng then v else -v))
      in
      let csp = Models.sat clauses ~n_vars in
      let oracle = Csp.solve_backtracking csp <> None in
      match Solver.solve csp ~strategy:`Ghd ~seed with
      | Some a -> oracle && Csp.consistent csp a
      | None -> not oracle)


(* --- adaptive consistency (bucket elimination solving) --- *)

let test_adaptive_australia () =
  let csp = Models.australia () in
  match Adaptive.solve_auto csp with
  | Some a -> check "consistent" true (Csp.consistent csp a)
  | None -> Alcotest.fail "Australia is 3-colorable"

let test_adaptive_unsat () =
  let unsat = Models.sat [ [ 1 ]; [ -1 ] ] ~n_vars:1 in
  check "unsat" true (Adaptive.solve_auto unsat = None)

let test_adaptive_rejects_bad_ordering () =
  let csp = Models.australia () in
  check "bad ordering" true
    (try
       ignore (Adaptive.solve csp [| 0; 0; 1; 2; 3; 4; 5 |]);
       false
     with Invalid_argument _ -> true)

let prop_adaptive_agrees =
  QCheck.Test.make ~count:60 ~name:"adaptive consistency = backtracking"
    QCheck.(make QCheck.Gen.(pair int (0 -- 1000)))
    (fun (seed, tseed) ->
      let tightness = float_of_int tseed /. 1000.0 in
      let csp =
        Models.random_csp ~seed ~n_vars:6 ~domain_size:3 ~n_constraints:5
          ~arity:2 ~tightness
      in
      let oracle = Csp.solve_backtracking csp <> None in
      (* any ordering must give the same satisfiability *)
      let rng = Random.State.make [| seed |] in
      let sigma = Hd_core.Ordering.random rng 6 in
      match Adaptive.solve csp sigma with
      | Some a -> oracle && Csp.consistent csp a
      | None -> not oracle)



let test_relation_errors () =
  check "dup scope rejected" true
    (try
       ignore (Relation.make ~scope:[| 1; 1 |] []);
       false
     with Invalid_argument _ -> true);
  check "arity mismatch rejected" true
    (try
       ignore (Relation.make ~scope:[| 0; 1 |] [ [| 3 |] ]);
       false
     with Invalid_argument _ -> true);
  Alcotest.check_raises "value outside scope" Not_found (fun () ->
      ignore (Relation.value r_ab [| 1; 2 |] ~var:9))

let test_relation_equal () =
  let a = Relation.make ~scope:[| 0; 1 |] [ [| 1; 2 |]; [| 3; 4 |] ] in
  let b = Relation.make ~scope:[| 0; 1 |] [ [| 3; 4 |]; [| 1; 2 |] ] in
  check "order-insensitive equal" true (Relation.equal a b);
  let c = Relation.make ~scope:[| 0; 1 |] [ [| 1; 2 |] ] in
  check "not equal" false (Relation.equal a c)

let test_count_unsat_zero () =
  let unsat = Models.sat [ [ 1 ]; [ -1 ] ] ~n_vars:1 in
  let h = Csp.hypergraph unsat in
  let td = Td.of_ordering_hypergraph h [| 0 |] in
  check_int "unsat counts 0" 0 (Solver.count_with_td unsat td)

let test_adaptive_queens () =
  check "adaptive solves 5-queens" true
    (Adaptive.solve_auto (Models.n_queens 5) <> None);
  check "adaptive rejects 3-queens" true
    (Adaptive.solve_auto (Models.n_queens 3) = None)

let prop_join_associative_cardinality =
  QCheck.Test.make ~count:60 ~name:"join associativity (cardinality)"
    QCheck.(make QCheck.Gen.(pair int int))
    (fun (s1, s2) ->
      let rng = Random.State.make [| s1; s2 |] in
      let mk scope =
        Relation.make ~scope
          (List.init
             (1 + Random.State.int rng 5)
             (fun _ ->
               Array.init (Array.length scope) (fun _ -> Random.State.int rng 3)))
      in
      let a = mk [| 0; 1 |] and b = mk [| 1; 2 |] and c = mk [| 2; 3 |] in
      Relation.cardinality (Relation.join (Relation.join a b) c)
      = Relation.cardinality (Relation.join a (Relation.join b c)))

let prop_semijoin_idempotent =
  QCheck.Test.make ~count:60 ~name:"semijoin idempotent"
    QCheck.(make QCheck.Gen.(pair int int))
    (fun (s1, s2) ->
      let rng = Random.State.make [| s1; s2 |] in
      let mk scope =
        Relation.make ~scope
          (List.init
             (1 + Random.State.int rng 5)
             (fun _ ->
               Array.init (Array.length scope) (fun _ -> Random.State.int rng 3)))
      in
      let a = mk [| 0; 1 |] and b = mk [| 1; 2 |] in
      let once = Relation.semijoin a b in
      Relation.equal once (Relation.semijoin once b))

(* --- model counting on junction trees --- *)

let test_count_australia () =
  let csp = Models.australia () in
  let h = Csp.hypergraph csp in
  let rng = Random.State.make [| 4 |] in
  let sigma = Hd_core.Ordering_heuristics.min_fill_hypergraph rng h in
  let td = Td.of_ordering_hypergraph h sigma in
  check_int "count via TD" 18 (Solver.count_with_td csp td)

let test_count_queens () =
  let csp = Models.n_queens 5 in
  let h = Csp.hypergraph csp in
  let rng = Random.State.make [| 4 |] in
  let sigma = Hd_core.Ordering_heuristics.min_fill_hypergraph rng h in
  let td = Td.of_ordering_hypergraph h sigma in
  check_int "5-queens count via TD" 10 (Solver.count_with_td csp td)

(* known closed-form model counts: a path of binary [<>] constraints
   (alpha-acyclic) has d.(d-1)^(n-1) models; the [<>] triangle (cyclic)
   has d.(d-1).(d-2).  These pin down the hash-aggregated counting in
   Join_tree.count_solutions and the bag-join counting in
   Solver.count_with_td against closed forms rather than against
   another solver. *)

let neq_relation i j d =
  let tuples = ref [] in
  for a = 0 to d - 1 do
    for b = 0 to d - 1 do
      if a <> b then tuples := [| a; b |] :: !tuples
    done
  done;
  Relation.make ~scope:[| i; j |] !tuples

let rec pow b e = if e = 0 then 1 else b * pow b (e - 1)

let test_count_chain_known () =
  let n = 5 and d = 3 in
  let domains = Array.make n (Array.init d Fun.id) in
  let cons = List.init (n - 1) (fun i -> neq_relation i (i + 1) d) in
  let csp = Csp.make ~domains cons in
  let expected = d * pow (d - 1) (n - 1) in
  check_int "exhaustive" expected (Csp.count_solutions csp);
  let h = Csp.hypergraph csp in
  let rng = Random.State.make [| 7 |] in
  let sigma = Hd_core.Ordering_heuristics.min_fill_hypergraph rng h in
  let td = Td.of_ordering_hypergraph h sigma in
  check_int "count via TD" expected (Solver.count_with_td csp td);
  (* the constraints themselves form a path join tree *)
  let jt =
    {
      Join_tree.relations = Array.of_list cons;
      parent = Array.init (n - 1) (fun i -> i - 1);
    }
  in
  check "is a join tree" true (Join_tree.is_join_tree jt);
  check_int "count on the join tree" expected (Join_tree.count_solutions jt);
  (match Join_tree.acyclic_solve jt ~n_vars:n with
  | Some a -> check "acyclic_solve solution consistent" true (Csp.consistent csp a)
  | None -> Alcotest.fail "expected a solution");
  match Solver.solve_if_acyclic csp with
  | Some (Some a) -> check "solve_if_acyclic consistent" true (Csp.consistent csp a)
  | _ -> Alcotest.fail "chain should be recognised as acyclic"

let test_count_triangle_known () =
  let d = 3 in
  let domains = Array.make 3 (Array.init d Fun.id) in
  let cons =
    [ neq_relation 0 1 d; neq_relation 1 2 d; neq_relation 0 2 d ]
  in
  let csp = Csp.make ~domains cons in
  let expected = d * (d - 1) * (d - 2) in
  check_int "exhaustive" expected (Csp.count_solutions csp);
  check "triangle is cyclic" true (Solver.solve_if_acyclic csp = None);
  let h = Csp.hypergraph csp in
  let rng = Random.State.make [| 7 |] in
  let sigma = Hd_core.Ordering_heuristics.min_fill_hypergraph rng h in
  let td = Td.of_ordering_hypergraph h sigma in
  check_int "count via TD" expected (Solver.count_with_td csp td);
  match Solver.solve_with_td csp td with
  | Some a -> check "solve_with_td consistent" true (Csp.consistent csp a)
  | None -> Alcotest.fail "triangle with 3 colours is satisfiable"

let prop_count_agrees =
  QCheck.Test.make ~count:50 ~name:"TD counting = exhaustive counting"
    QCheck.(make QCheck.Gen.(pair int (0 -- 1000)))
    (fun (seed, tseed) ->
      let tightness = float_of_int tseed /. 1000.0 in
      let csp =
        Models.random_csp ~seed ~n_vars:5 ~domain_size:3 ~n_constraints:4
          ~arity:2 ~tightness
      in
      let h = Csp.hypergraph csp in
      let rng = Random.State.make [| seed |] in
      let sigma = Hd_core.Ordering.random rng 5 in
      let td = Td.of_ordering_hypergraph h sigma in
      Solver.count_with_td csp td = Csp.count_solutions csp)

let () =
  Alcotest.run "csp"
    [
      ( "relations",
        [
          Alcotest.test_case "basics" `Quick test_relation_basics;
          Alcotest.test_case "join" `Quick test_relation_join;
          Alcotest.test_case "semijoin" `Quick test_relation_semijoin;
          Alcotest.test_case "project/select/full" `Quick test_relation_project_select_full;
        ]
        @ List.map QCheck_alcotest.to_alcotest
            [
              prop_join_commutes;
              prop_join_associative_cardinality;
              prop_semijoin_idempotent;
            ]
        @ [
            Alcotest.test_case "errors" `Quick test_relation_errors;
            Alcotest.test_case "equality" `Quick test_relation_equal;
          ] );
      ( "models",
        [
          Alcotest.test_case "australia (Example 1)" `Quick test_australia;
          Alcotest.test_case "example 5" `Quick test_example5;
          Alcotest.test_case "sat (Example 2)" `Quick test_sat_model;
          Alcotest.test_case "n-queens" `Quick test_nqueens;
        ] );
      ( "acyclic solving",
        [
          Alcotest.test_case "path join tree" `Quick test_acyclic_solving_figure;
          Alcotest.test_case "unsat" `Quick test_acyclic_unsat;
        ] );
      ( "counting",
        [
          Alcotest.test_case "australia" `Quick test_count_australia;
          Alcotest.test_case "5-queens" `Quick test_count_queens;
          Alcotest.test_case "unsat counts zero" `Quick test_count_unsat_zero;
          Alcotest.test_case "chain of <> (closed form)" `Quick
            test_count_chain_known;
          Alcotest.test_case "cyclic <> triangle (closed form)" `Quick
            test_count_triangle_known;
        ]
        @ List.map QCheck_alcotest.to_alcotest [ prop_count_agrees ] );
      ( "adaptive consistency",
        [
          Alcotest.test_case "australia" `Quick test_adaptive_australia;
          Alcotest.test_case "unsat" `Quick test_adaptive_unsat;
          Alcotest.test_case "bad ordering rejected" `Quick test_adaptive_rejects_bad_ordering;
          Alcotest.test_case "n-queens" `Quick test_adaptive_queens;
        ]
        @ List.map QCheck_alcotest.to_alcotest [ prop_adaptive_agrees ] );
      ( "decomposition solving",
        [
          Alcotest.test_case "australia" `Quick test_solve_australia_from_decompositions;
          Alcotest.test_case "example 5" `Quick test_solve_example5_from_decompositions;
          Alcotest.test_case "explicit decompositions" `Quick test_solve_explicit_decompositions;
        ]
        @ List.map QCheck_alcotest.to_alcotest
            [ prop_decomposition_solving_agrees; prop_sat_via_ghd ] );
    ]
