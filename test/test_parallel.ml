(* hd_parallel: incumbent sharing, the domain pool, the SPSC ring, and
   portfolio determinism across -j values. *)

module Graph = Hd_graph.Graph
module Incumbent = Hd_core.Incumbent
module St = Hd_search.Search_types
module Pool = Hd_parallel.Domain_pool
module Ring = Hd_parallel.Ring
module Portfolio = Hd_parallel.Portfolio

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let graph name =
  match Hd_instances.Graphs.by_name name with
  | Some g -> g
  | None -> Alcotest.failf "unknown graph instance %s" name

let hypergraph name =
  match Hd_instances.Hypergraphs.by_name name with
  | Some h -> h
  | None -> Alcotest.failf "unknown hypergraph instance %s" name

(* ------------------------------------------------------------------ *)
(* Incumbent                                                           *)
(* ------------------------------------------------------------------ *)

let test_incumbent_bounds () =
  let inc = Incumbent.create ~lb:2 ~ub:10 () in
  check_int "initial lb" 2 (Incumbent.lb inc);
  check_int "initial ub" 10 (Incumbent.ub inc);
  check "improving offer accepted" true (Incumbent.offer_ub inc 8);
  check "equal offer rejected" false (Incumbent.offer_ub inc 8);
  check "worse offer rejected" false (Incumbent.offer_ub inc 9);
  check "improving lb accepted" true (Incumbent.raise_lb inc 5);
  check "equal lb rejected" false (Incumbent.raise_lb inc 5);
  check "not closed at [5,8]" false (Incumbent.closed inc);
  check "close by ub" true (Incumbent.offer_ub inc 5);
  check "closed at [5,5]" true (Incumbent.closed inc);
  check "create rejects lb > ub" true
    (try
       ignore (Incumbent.create ~lb:3 ~ub:2 ());
       false
     with Invalid_argument _ -> true)

let test_incumbent_witness () =
  let inc = Incumbent.create () in
  let sigma = [| 3; 1; 2; 0 |] in
  check "offer with witness" true (Incumbent.offer_ub inc ~witness:sigma 7);
  sigma.(0) <- 99;
  (match Incumbent.witness inc with
  | Some w -> check_int "witness frozen at offer time" 3 w.(0)
  | None -> Alcotest.fail "witness lost");
  (* an improving offer without a witness keeps the previous one *)
  check "witness-less offer" true (Incumbent.offer_ub inc 6);
  check "previous witness retained" true (Incumbent.witness inc <> None)

let test_incumbent_cancel () =
  let inc = Incumbent.create () in
  check "fresh incumbent not cancelled" false (Incumbent.cancelled inc);
  Incumbent.cancel inc;
  check "cancelled after cancel" true (Incumbent.cancelled inc)

(* four domains hammer the same incumbent with interleaved offers; the
   final state must be exactly the best offer of each kind, with no
   torn lb/ub pair observable along the way *)
let test_incumbent_multicore () =
  let inc = Incumbent.create () in
  let torn = Atomic.make false in
  let worker _ () =
    for w = 1500 downto 1000 do
      ignore (Incumbent.offer_ub inc w);
      let lb, ub = Incumbent.bounds inc in
      if lb > ub then Atomic.set torn true
    done;
    for w = 500 to 999 do
      ignore (Incumbent.raise_lb inc w);
      let lb, ub = Incumbent.bounds inc in
      if lb > ub then Atomic.set torn true
    done
  in
  let domains = Array.init 4 (fun i -> Domain.spawn (worker i)) in
  Array.iter Domain.join domains;
  check_int "final ub is the best offer" 1000 (Incumbent.ub inc);
  check_int "final lb is the best raise" 999 (Incumbent.lb inc);
  check "no torn snapshot observed" false (Atomic.get torn)

(* ------------------------------------------------------------------ *)
(* Ring                                                                *)
(* ------------------------------------------------------------------ *)

let test_ring_fifo () =
  let r = Ring.create 4 in
  check "fresh ring empty" true (Ring.is_empty r);
  check "pop on empty" true (Ring.try_pop r = None);
  for i = 1 to 4 do
    check "push while space" true (Ring.try_push r i)
  done;
  check "push on full drops" false (Ring.try_push r 5);
  check_int "length when full" 4 (Ring.length r);
  check "fifo order" true (Ring.try_pop r = Some 1);
  check "push after pop" true (Ring.try_push r 5);
  List.iter
    (fun expected -> check "fifo order" true (Ring.try_pop r = Some expected))
    [ 2; 3; 4; 5 ];
  check "drained" true (Ring.is_empty r)

let test_ring_capacity () =
  check_int "1 stays 1" 1 (Ring.capacity (Ring.create 1));
  check_int "3 rounds to 4" 4 (Ring.capacity (Ring.create 3));
  check_int "4 stays 4" 4 (Ring.capacity (Ring.create 4));
  check_int "5 rounds to 8" 8 (Ring.capacity (Ring.create 5));
  check "capacity 0 rejected" true
    (try
       ignore (Ring.create 0);
       false
     with Invalid_argument _ -> true)

(* one producer domain, consumer on the main domain: every element
   arrives exactly once and in order, across a ring much smaller than
   the stream *)
let test_ring_spsc_stream () =
  let n = 10_000 in
  let r = Ring.create 8 in
  let producer () =
    for i = 0 to n - 1 do
      while not (Ring.try_push r i) do
        Domain.cpu_relax ()
      done
    done
  in
  let d = Domain.spawn producer in
  let received = ref 0 in
  while !received < n do
    match Ring.try_pop r with
    | Some x ->
        check_int "in-order delivery" !received x;
        incr received
    | None -> Domain.cpu_relax ()
  done;
  Domain.join d;
  check "stream drained" true (Ring.is_empty r)

(* ------------------------------------------------------------------ *)
(* Domain pool                                                         *)
(* ------------------------------------------------------------------ *)

let test_pool_submit_await () =
  Pool.with_pool ~domains:2 (fun pool ->
      check_int "pool size" 2 (Pool.size pool);
      let futures = List.init 20 (fun i -> Pool.submit pool (fun () -> i * i)) in
      List.iteri
        (fun i fut -> check_int "job result" (i * i) (Pool.await fut))
        futures)

let test_pool_exception () =
  Pool.with_pool ~domains:1 (fun pool ->
      let fut = Pool.submit pool (fun () -> failwith "boom") in
      check "job exception re-raised" true
        (try
           ignore (Pool.await fut);
           false
         with Failure m -> m = "boom");
      (* the worker survives a failing job *)
      let fut = Pool.submit pool (fun () -> 41 + 1) in
      check_int "worker survives failure" 42 (Pool.await fut))

let test_pool_cancel () =
  Pool.with_pool ~domains:1 (fun pool ->
      let started = Atomic.make false and gate = Atomic.make false in
      let blocker =
        Pool.submit pool (fun () ->
            Atomic.set started true;
            while not (Atomic.get gate) do
              Domain.cpu_relax ()
            done;
            "done")
      in
      while not (Atomic.get started) do
        Domain.cpu_relax ()
      done;
      (* the single worker is busy, so this job is still queued *)
      let queued = Pool.submit pool (fun () -> "never") in
      check "running job not cancellable" false (Pool.cancel blocker);
      check "queued job cancellable" true (Pool.cancel queued);
      check "cancel is idempotent-ish" false (Pool.cancel queued);
      Atomic.set gate true;
      check "blocker completes" true (Pool.await blocker = "done");
      check "await on cancelled raises" true
        (try
           ignore (Pool.await queued);
           false
         with Pool.Cancelled -> true))

let test_pool_invalid () =
  check "zero domains rejected" true
    (try
       ignore (Pool.create ~domains:0);
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Work-stealing deque                                                 *)
(* ------------------------------------------------------------------ *)

module Deque = Hd_parallel.Deque
module Sched = Hd_parallel.Scheduler
module Hdastar = Hd_parallel.Hdastar
module Budget = Hd_engine.Budget

let test_deque_owner_order () =
  let d = Deque.create 8 in
  check "pop on empty" true (Deque.pop d = None);
  check "steal on empty" true (Deque.steal d = None);
  List.iter (fun i -> check "push ok" true (Deque.push d i = `Ok)) [ 1; 2; 3; 4 ];
  check_int "length" 4 (Deque.length d);
  check "owner pops LIFO" true (Deque.pop d = Some 4);
  check "thief steals FIFO" true (Deque.steal d = Some 1);
  check "steal next oldest" true (Deque.steal d = Some 2);
  check "pop the rest" true (Deque.pop d = Some 3);
  check "drained" true (Deque.pop d = None)

let test_deque_full () =
  let d = Deque.create 2 in
  check "push 1" true (Deque.push d 1 = `Ok);
  check "push 2" true (Deque.push d 2 = `Ok);
  check "push on full reports" true (Deque.push d 3 = `Full);
  check "pop frees a slot" true (Deque.pop d = Some 2);
  check "push after pop" true (Deque.push d 3 = `Ok);
  check "capacity 0 rejected" true
    (try
       ignore (Deque.create 0);
       false
     with Invalid_argument _ -> true)

(* the owner pushes, pops and overflows while three thieves hammer the
   top: every element must be consumed exactly once, whichever side
   wins each race *)
let test_deque_steal_hammer () =
  let n = 50_000 in
  let d = Deque.create 1024 in
  let seen = Array.init n (fun _ -> Atomic.make 0) in
  let consumed = Atomic.make 0 in
  let dup = Atomic.make false in
  let eat v =
    if Atomic.fetch_and_add seen.(v) 1 <> 0 then Atomic.set dup true;
    Atomic.incr consumed
  in
  let stop = Atomic.make false in
  let thief () =
    while not (Atomic.get stop) do
      match Deque.steal d with
      | Some v -> eat v
      | None -> Domain.cpu_relax ()
    done;
    let rec drain () =
      match Deque.steal d with
      | Some v ->
          eat v;
          drain ()
      | None -> ()
    in
    drain ()
  in
  let thieves = Array.init 3 (fun _ -> Domain.spawn thief) in
  for i = 0 to n - 1 do
    (match Deque.push d i with
    | `Ok -> ()
    | `Full -> (
        (* drain one slot, as the scheduler's injector overflow would *)
        (match Deque.pop d with Some v -> eat v | None -> ());
        match Deque.push d i with `Ok -> () | `Full -> eat i));
    if i land 7 = 0 then
      match Deque.pop d with Some v -> eat v | None -> ()
  done;
  let rec drain () =
    match Deque.pop d with
    | Some v ->
        eat v;
        drain ()
    | None -> ()
  in
  drain ();
  Atomic.set stop true;
  Array.iter Domain.join thieves;
  check "no element consumed twice" false (Atomic.get dup);
  check_int "every element consumed exactly once" n (Atomic.get consumed)

(* ------------------------------------------------------------------ *)
(* Scheduler                                                           *)
(* ------------------------------------------------------------------ *)

let test_sched_sequential_inline () =
  Sched.with_scheduler ~workers:0 (fun s ->
      check_int "no workers" 0 (Sched.size s);
      let order = ref [] in
      Sched.run_all s (List.init 5 (fun i () -> order := i :: !order));
      check "workers:0 runs in list order" true
        (List.rev !order = [ 0; 1; 2; 3; 4 ]);
      let sq = Sched.map_array s (fun x -> x * x) (Array.init 10 Fun.id) in
      check "map_array preserves order" true
        (sq = Array.init 10 (fun i -> i * i)))

(* ISSUE acceptance: fork/join through the scheduler is deterministic —
   map_array at 0 workers and at 3 workers both agree with Array.map on
   arbitrary inputs *)
let test_sched_qcheck_determinism () =
  Sched.with_scheduler ~workers:3 (fun par ->
      Sched.with_scheduler ~workers:0 (fun seq ->
          let t =
            QCheck.Test.make ~count:50 ~name:"fork/join determinism"
              QCheck.(list small_int)
              (fun xs ->
                let arr = Array.of_list xs in
                let f x = (x * 31) lxor (x asr 2) in
                let expected = Array.map f arr in
                Sched.map_array seq f arr = expected
                && Sched.map_array par f arr = expected)
          in
          QCheck.Test.check_exn t))

(* nested run_all from inside tasks: the joining worker helps instead
   of deadlocking, and every leaf runs exactly once *)
let test_sched_nested_tree_sum () =
  Sched.with_scheduler ~workers:3 (fun s ->
      let total = Atomic.make 0 in
      let rec go lo hi =
        if hi - lo <= 16 then
          for i = lo to hi - 1 do
            ignore (Atomic.fetch_and_add total i)
          done
        else
          let mid = (lo + hi) / 2 in
          Sched.run_all s [ (fun () -> go lo mid); (fun () -> go mid hi) ]
      in
      go 0 10_000;
      check_int "nested run_all sums every leaf" (10_000 * 9_999 / 2)
        (Atomic.get total))

exception Task_boom of int

let test_sched_exceptions () =
  Sched.with_scheduler ~workers:2 (fun s ->
      let ran_b = Atomic.make false in
      check "first failing task in list order re-raised" true
        (try
           Sched.run_all s
             [
               (fun () -> raise (Task_boom 1));
               (fun () -> Atomic.set ran_b true);
               (fun () -> raise (Task_boom 3));
             ];
           false
         with
        | Task_boom 1 -> true
        | Task_boom _ -> false);
      check "siblings still ran" true (Atomic.get ran_b);
      (* the pool survives a failing batch *)
      let r = Sched.map_array s (fun x -> x + 1) [| 41 |] in
      check_int "scheduler survives the failure" 42 r.(0))

let test_sched_resume_turns () =
  Sched.with_scheduler ~workers:1 (fun s ->
      let turns = Atomic.make 0 in
      let finished = Atomic.make false in
      Sched.resume s (fun () ->
          if Atomic.fetch_and_add turns 1 < 4 then `Again
          else begin
            Atomic.set finished true;
            `Done
          end);
      let tries = ref 0 in
      while (not (Atomic.get finished)) && !tries < 5_000 do
        incr tries;
        Unix.sleepf 0.001
      done;
      check "resumable task completed" true (Atomic.get finished);
      check_int "ran once per turn" 5 (Atomic.get turns))

(* the PR 7 budget regression, now through the scheduler: cancelling
   one task's sub-budget must reach neither its sibling nor the
   parent *)
let test_sched_cancel_isolation () =
  Sched.with_scheduler ~workers:2 (fun s ->
      let parent = Budget.create () in
      let subs = Array.init 2 (fun _ -> Budget.sub ~stages:2 parent) in
      let sibling_survived = Atomic.make false in
      Sched.run_all s
        [
          (fun () -> Budget.cancel subs.(0));
          (fun () ->
            for _ = 1 to 1_000 do
              Domain.cpu_relax ()
            done;
            if not (Budget.cancelled subs.(1)) then
              Atomic.set sibling_survived true);
        ];
      check "cancelled sub is cancelled" true (Budget.cancelled subs.(0));
      check "sibling budget survives" true (Atomic.get sibling_survived);
      check "parent not cancelled" false (Budget.cancelled parent);
      (* and top-down still propagates: cancelling the parent reaches
         the surviving child *)
      Budget.cancel parent;
      check "parent cancel reaches children" true (Budget.cancelled subs.(1)))

(* ------------------------------------------------------------------ *)
(* Hash-distributed A-star                                             *)
(* ------------------------------------------------------------------ *)

let exact_of name (r : St.result) =
  match r.St.outcome with
  | St.Exact w -> w
  | St.Bounds { lb; ub } ->
      Alcotest.failf "%s: expected exact, got [%d,%d]" name lb ub

(* ISSUE acceptance: the distributed search proves the same optimum as
   the sequential A*, at 0 workers (deterministic inline mode) and at
   2 workers, and its witness actually achieves the width *)
let test_hdastar_tw_matches_seq () =
  List.iter
    (fun name ->
      let g = graph name in
      let expected = exact_of name (Hd_search.Astar_tw.solve ~seed:3 g) in
      Sched.with_scheduler ~workers:0 (fun s ->
          let r = Hdastar.solve_tw ~sched:s ~seed:3 g in
          check_int (name ^ " hdastar j1 width") expected (exact_of name r);
          match r.St.ordering with
          | Some sigma ->
              let ws = Hd_core.Eval.of_graph g in
              check_int
                (name ^ " witness achieves width")
                expected
                (Hd_core.Eval.tw_width ws sigma)
          | None -> Alcotest.failf "%s: no witness ordering" name);
      Sched.with_scheduler ~workers:2 (fun s ->
          check_int (name ^ " hdastar j3 width") expected
            (exact_of name (Hdastar.solve_tw ~sched:s ~seed:3 g))))
    [ "grid4"; "myciel3"; "grid5" ]

let test_hdastar_ghw_matches_seq () =
  let h = hypergraph "adder_15" in
  let expected = exact_of "adder_15" (Hd_search.Astar_ghw.solve ~seed:5 h) in
  check_int "adder_15 seq ghw" 2 expected;
  Sched.with_scheduler ~workers:0 (fun s ->
      check_int "adder_15 hdastar j1" expected
        (exact_of "adder_15" (Hdastar.solve_ghw ~sched:s ~seed:5 h)));
  Sched.with_scheduler ~workers:2 (fun s ->
      check_int "adder_15 hdastar j3" expected
        (exact_of "adder_15" (Hdastar.solve_ghw ~sched:s ~seed:5 h)))

(* on an exhausted state budget the distributed search degrades to the
   incumbent bounds, like the sequential solver *)
let test_hdastar_budget_bounds () =
  let g = graph "queen5_5" in
  Sched.with_scheduler ~workers:2 (fun s ->
      let b = Budget.create ~max_states:50 () in
      let r = Hdastar.solve_tw ~sched:s ~within:b ~seed:1 g in
      match r.St.outcome with
      | St.Bounds { lb; ub } ->
          check "bounds sane" true (lb <= ub);
          check "ub from a real ordering" true (ub <= 24)
      | St.Exact _ -> Alcotest.fail "50 states cannot close queen5_5")

let test_par_solvers_registered () =
  Hd_parallel.Par_solvers.ensure ();
  Hd_parallel.Par_solvers.ensure ();
  let module S = Hd_engine.Solver in
  check "astar-tw-par registered" true (S.find "astar-tw-par" <> None);
  check "astar-ghw-par registered" true (S.find "astar-ghw-par" <> None)

(* ------------------------------------------------------------------ *)
(* Portfolio                                                           *)
(* ------------------------------------------------------------------ *)

let exact_width name (r : Portfolio.t) =
  match r.outcome with
  | St.Exact w -> w
  | St.Bounds { lb; ub } ->
      Alcotest.failf "%s: portfolio did not close, got [%d,%d]" name lb ub

(* ISSUE acceptance: with fixed seeds the portfolio reports the same
   width at -j 1, -j 2 and -j 8 — exact members prove the same optimum
   whatever the interleaving *)
let test_portfolio_determinism () =
  let budget = { St.time_limit = Some 120.0; max_states = None } in
  List.iter
    (fun (name, expected) ->
      let g = graph name in
      let widths =
        List.map
          (fun jobs ->
            exact_width name (Portfolio.solve_tw ~jobs ~budget ~seed:42 g))
          [ 1; 2; 8 ]
      in
      List.iter
        (fun w -> check_int (name ^ " width equal across -j") expected w)
        widths)
    [ ("queen5_5", 18); ("myciel4", 10); ("grid4", 4) ]

let test_portfolio_report_shape () =
  let budget = { St.time_limit = Some 60.0; max_states = None } in
  let r = Portfolio.solve_tw ~jobs:3 ~budget ~seed:7 (graph "grid4") in
  check_int "domains = members raced" 3 r.Portfolio.domains;
  check_int "member report per member" 3 (List.length r.Portfolio.members);
  check "winner recorded" true (r.Portfolio.winner <> None);
  check "witness ordering present" true (r.Portfolio.ordering <> None);
  match r.Portfolio.ordering with
  | Some sigma ->
      (* the witness must actually achieve the reported width *)
      let g = graph "grid4" in
      let ws = Hd_core.Eval.of_graph g in
      check_int "witness achieves width" (exact_width "grid4" r)
        (Hd_core.Eval.tw_width ws sigma)
  | None -> ()

let test_portfolio_ghw () =
  let budget = { St.time_limit = Some 60.0; max_states = None } in
  let h = hypergraph "adder_15" in
  let r = Portfolio.solve_ghw ~jobs:2 ~budget ~seed:5 h in
  check_int "adder_15 ghw" 2 (exact_width "adder_15" r)

let () =
  Alcotest.run "hd_parallel"
    [
      ( "incumbent",
        [
          Alcotest.test_case "bounds protocol" `Quick test_incumbent_bounds;
          Alcotest.test_case "witness freezing" `Quick test_incumbent_witness;
          Alcotest.test_case "cancellation" `Quick test_incumbent_cancel;
          Alcotest.test_case "multicore hammer" `Quick test_incumbent_multicore;
        ] );
      ( "ring",
        [
          Alcotest.test_case "fifo" `Quick test_ring_fifo;
          Alcotest.test_case "capacity rounding" `Quick test_ring_capacity;
          Alcotest.test_case "spsc stream" `Quick test_ring_spsc_stream;
        ] );
      ( "pool",
        [
          Alcotest.test_case "submit/await" `Quick test_pool_submit_await;
          Alcotest.test_case "exceptions" `Quick test_pool_exception;
          Alcotest.test_case "cancel" `Quick test_pool_cancel;
          Alcotest.test_case "invalid size" `Quick test_pool_invalid;
        ] );
      ( "deque",
        [
          Alcotest.test_case "owner order" `Quick test_deque_owner_order;
          Alcotest.test_case "full / overflow" `Quick test_deque_full;
          Alcotest.test_case "steal hammer" `Quick test_deque_steal_hammer;
        ] );
      ( "scheduler",
        [
          Alcotest.test_case "sequential inline mode" `Quick
            test_sched_sequential_inline;
          Alcotest.test_case "qcheck fork/join determinism" `Quick
            test_sched_qcheck_determinism;
          Alcotest.test_case "nested tree sum" `Quick test_sched_nested_tree_sum;
          Alcotest.test_case "exception re-raise" `Quick test_sched_exceptions;
          Alcotest.test_case "resumable turns" `Quick test_sched_resume_turns;
          Alcotest.test_case "cancel isolation" `Quick
            test_sched_cancel_isolation;
        ] );
      ( "hdastar",
        [
          Alcotest.test_case "tw matches sequential" `Slow
            test_hdastar_tw_matches_seq;
          Alcotest.test_case "ghw matches sequential" `Slow
            test_hdastar_ghw_matches_seq;
          Alcotest.test_case "budget degrades to bounds" `Quick
            test_hdastar_budget_bounds;
          Alcotest.test_case "par solvers registered" `Quick
            test_par_solvers_registered;
        ] );
      ( "portfolio",
        [
          Alcotest.test_case "determinism across -j" `Slow
            test_portfolio_determinism;
          Alcotest.test_case "report shape" `Quick test_portfolio_report_shape;
          Alcotest.test_case "ghw race" `Quick test_portfolio_ghw;
        ] );
    ]
