(* hd_parallel: incumbent sharing, the domain pool, the SPSC ring, and
   portfolio determinism across -j values. *)

module Graph = Hd_graph.Graph
module Incumbent = Hd_core.Incumbent
module St = Hd_search.Search_types
module Pool = Hd_parallel.Domain_pool
module Ring = Hd_parallel.Ring
module Portfolio = Hd_parallel.Portfolio

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let graph name =
  match Hd_instances.Graphs.by_name name with
  | Some g -> g
  | None -> Alcotest.failf "unknown graph instance %s" name

let hypergraph name =
  match Hd_instances.Hypergraphs.by_name name with
  | Some h -> h
  | None -> Alcotest.failf "unknown hypergraph instance %s" name

(* ------------------------------------------------------------------ *)
(* Incumbent                                                           *)
(* ------------------------------------------------------------------ *)

let test_incumbent_bounds () =
  let inc = Incumbent.create ~lb:2 ~ub:10 () in
  check_int "initial lb" 2 (Incumbent.lb inc);
  check_int "initial ub" 10 (Incumbent.ub inc);
  check "improving offer accepted" true (Incumbent.offer_ub inc 8);
  check "equal offer rejected" false (Incumbent.offer_ub inc 8);
  check "worse offer rejected" false (Incumbent.offer_ub inc 9);
  check "improving lb accepted" true (Incumbent.raise_lb inc 5);
  check "equal lb rejected" false (Incumbent.raise_lb inc 5);
  check "not closed at [5,8]" false (Incumbent.closed inc);
  check "close by ub" true (Incumbent.offer_ub inc 5);
  check "closed at [5,5]" true (Incumbent.closed inc);
  check "create rejects lb > ub" true
    (try
       ignore (Incumbent.create ~lb:3 ~ub:2 ());
       false
     with Invalid_argument _ -> true)

let test_incumbent_witness () =
  let inc = Incumbent.create () in
  let sigma = [| 3; 1; 2; 0 |] in
  check "offer with witness" true (Incumbent.offer_ub inc ~witness:sigma 7);
  sigma.(0) <- 99;
  (match Incumbent.witness inc with
  | Some w -> check_int "witness frozen at offer time" 3 w.(0)
  | None -> Alcotest.fail "witness lost");
  (* an improving offer without a witness keeps the previous one *)
  check "witness-less offer" true (Incumbent.offer_ub inc 6);
  check "previous witness retained" true (Incumbent.witness inc <> None)

let test_incumbent_cancel () =
  let inc = Incumbent.create () in
  check "fresh incumbent not cancelled" false (Incumbent.cancelled inc);
  Incumbent.cancel inc;
  check "cancelled after cancel" true (Incumbent.cancelled inc)

(* four domains hammer the same incumbent with interleaved offers; the
   final state must be exactly the best offer of each kind, with no
   torn lb/ub pair observable along the way *)
let test_incumbent_multicore () =
  let inc = Incumbent.create () in
  let torn = Atomic.make false in
  let worker _ () =
    for w = 1500 downto 1000 do
      ignore (Incumbent.offer_ub inc w);
      let lb, ub = Incumbent.bounds inc in
      if lb > ub then Atomic.set torn true
    done;
    for w = 500 to 999 do
      ignore (Incumbent.raise_lb inc w);
      let lb, ub = Incumbent.bounds inc in
      if lb > ub then Atomic.set torn true
    done
  in
  let domains = Array.init 4 (fun i -> Domain.spawn (worker i)) in
  Array.iter Domain.join domains;
  check_int "final ub is the best offer" 1000 (Incumbent.ub inc);
  check_int "final lb is the best raise" 999 (Incumbent.lb inc);
  check "no torn snapshot observed" false (Atomic.get torn)

(* ------------------------------------------------------------------ *)
(* Ring                                                                *)
(* ------------------------------------------------------------------ *)

let test_ring_fifo () =
  let r = Ring.create 4 in
  check "fresh ring empty" true (Ring.is_empty r);
  check "pop on empty" true (Ring.try_pop r = None);
  for i = 1 to 4 do
    check "push while space" true (Ring.try_push r i)
  done;
  check "push on full drops" false (Ring.try_push r 5);
  check_int "length when full" 4 (Ring.length r);
  check "fifo order" true (Ring.try_pop r = Some 1);
  check "push after pop" true (Ring.try_push r 5);
  List.iter
    (fun expected -> check "fifo order" true (Ring.try_pop r = Some expected))
    [ 2; 3; 4; 5 ];
  check "drained" true (Ring.is_empty r)

let test_ring_capacity () =
  check_int "1 stays 1" 1 (Ring.capacity (Ring.create 1));
  check_int "3 rounds to 4" 4 (Ring.capacity (Ring.create 3));
  check_int "4 stays 4" 4 (Ring.capacity (Ring.create 4));
  check_int "5 rounds to 8" 8 (Ring.capacity (Ring.create 5));
  check "capacity 0 rejected" true
    (try
       ignore (Ring.create 0);
       false
     with Invalid_argument _ -> true)

(* one producer domain, consumer on the main domain: every element
   arrives exactly once and in order, across a ring much smaller than
   the stream *)
let test_ring_spsc_stream () =
  let n = 10_000 in
  let r = Ring.create 8 in
  let producer () =
    for i = 0 to n - 1 do
      while not (Ring.try_push r i) do
        Domain.cpu_relax ()
      done
    done
  in
  let d = Domain.spawn producer in
  let received = ref 0 in
  while !received < n do
    match Ring.try_pop r with
    | Some x ->
        check_int "in-order delivery" !received x;
        incr received
    | None -> Domain.cpu_relax ()
  done;
  Domain.join d;
  check "stream drained" true (Ring.is_empty r)

(* ------------------------------------------------------------------ *)
(* Domain pool                                                         *)
(* ------------------------------------------------------------------ *)

let test_pool_submit_await () =
  Pool.with_pool ~domains:2 (fun pool ->
      check_int "pool size" 2 (Pool.size pool);
      let futures = List.init 20 (fun i -> Pool.submit pool (fun () -> i * i)) in
      List.iteri
        (fun i fut -> check_int "job result" (i * i) (Pool.await fut))
        futures)

let test_pool_exception () =
  Pool.with_pool ~domains:1 (fun pool ->
      let fut = Pool.submit pool (fun () -> failwith "boom") in
      check "job exception re-raised" true
        (try
           ignore (Pool.await fut);
           false
         with Failure m -> m = "boom");
      (* the worker survives a failing job *)
      let fut = Pool.submit pool (fun () -> 41 + 1) in
      check_int "worker survives failure" 42 (Pool.await fut))

let test_pool_cancel () =
  Pool.with_pool ~domains:1 (fun pool ->
      let started = Atomic.make false and gate = Atomic.make false in
      let blocker =
        Pool.submit pool (fun () ->
            Atomic.set started true;
            while not (Atomic.get gate) do
              Domain.cpu_relax ()
            done;
            "done")
      in
      while not (Atomic.get started) do
        Domain.cpu_relax ()
      done;
      (* the single worker is busy, so this job is still queued *)
      let queued = Pool.submit pool (fun () -> "never") in
      check "running job not cancellable" false (Pool.cancel blocker);
      check "queued job cancellable" true (Pool.cancel queued);
      check "cancel is idempotent-ish" false (Pool.cancel queued);
      Atomic.set gate true;
      check "blocker completes" true (Pool.await blocker = "done");
      check "await on cancelled raises" true
        (try
           ignore (Pool.await queued);
           false
         with Pool.Cancelled -> true))

let test_pool_invalid () =
  check "zero domains rejected" true
    (try
       ignore (Pool.create ~domains:0);
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Portfolio                                                           *)
(* ------------------------------------------------------------------ *)

let exact_width name (r : Portfolio.t) =
  match r.outcome with
  | St.Exact w -> w
  | St.Bounds { lb; ub } ->
      Alcotest.failf "%s: portfolio did not close, got [%d,%d]" name lb ub

(* ISSUE acceptance: with fixed seeds the portfolio reports the same
   width at -j 1, -j 2 and -j 8 — exact members prove the same optimum
   whatever the interleaving *)
let test_portfolio_determinism () =
  let budget = { St.time_limit = Some 120.0; max_states = None } in
  List.iter
    (fun (name, expected) ->
      let g = graph name in
      let widths =
        List.map
          (fun jobs ->
            exact_width name (Portfolio.solve_tw ~jobs ~budget ~seed:42 g))
          [ 1; 2; 8 ]
      in
      List.iter
        (fun w -> check_int (name ^ " width equal across -j") expected w)
        widths)
    [ ("queen5_5", 18); ("myciel4", 10); ("grid4", 4) ]

let test_portfolio_report_shape () =
  let budget = { St.time_limit = Some 60.0; max_states = None } in
  let r = Portfolio.solve_tw ~jobs:3 ~budget ~seed:7 (graph "grid4") in
  check_int "domains = members raced" 3 r.Portfolio.domains;
  check_int "member report per member" 3 (List.length r.Portfolio.members);
  check "winner recorded" true (r.Portfolio.winner <> None);
  check "witness ordering present" true (r.Portfolio.ordering <> None);
  match r.Portfolio.ordering with
  | Some sigma ->
      (* the witness must actually achieve the reported width *)
      let g = graph "grid4" in
      let ws = Hd_core.Eval.of_graph g in
      check_int "witness achieves width" (exact_width "grid4" r)
        (Hd_core.Eval.tw_width ws sigma)
  | None -> ()

let test_portfolio_ghw () =
  let budget = { St.time_limit = Some 60.0; max_states = None } in
  let h = hypergraph "adder_15" in
  let r = Portfolio.solve_ghw ~jobs:2 ~budget ~seed:5 h in
  check_int "adder_15 ghw" 2 (exact_width "adder_15" r)

let () =
  Alcotest.run "hd_parallel"
    [
      ( "incumbent",
        [
          Alcotest.test_case "bounds protocol" `Quick test_incumbent_bounds;
          Alcotest.test_case "witness freezing" `Quick test_incumbent_witness;
          Alcotest.test_case "cancellation" `Quick test_incumbent_cancel;
          Alcotest.test_case "multicore hammer" `Quick test_incumbent_multicore;
        ] );
      ( "ring",
        [
          Alcotest.test_case "fifo" `Quick test_ring_fifo;
          Alcotest.test_case "capacity rounding" `Quick test_ring_capacity;
          Alcotest.test_case "spsc stream" `Quick test_ring_spsc_stream;
        ] );
      ( "pool",
        [
          Alcotest.test_case "submit/await" `Quick test_pool_submit_await;
          Alcotest.test_case "exceptions" `Quick test_pool_exception;
          Alcotest.test_case "cancel" `Quick test_pool_cancel;
          Alcotest.test_case "invalid size" `Quick test_pool_invalid;
        ] );
      ( "portfolio",
        [
          Alcotest.test_case "determinism across -j" `Slow
            test_portfolio_determinism;
          Alcotest.test_case "report shape" `Quick test_portfolio_report_shape;
          Alcotest.test_case "ghw race" `Quick test_portfolio_ghw;
        ] );
    ]
