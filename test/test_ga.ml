module Graph = Hd_graph.Graph
module Hypergraph = Hd_hypergraph.Hypergraph
module Ordering = Hd_core.Ordering
module Crossover = Hd_ga.Crossover
module Mutation = Hd_ga.Mutation
module Ga_engine = Hd_ga.Ga_engine
module Ga_tw = Hd_ga.Ga_tw
module Ga_ghw = Hd_ga.Ga_ghw
module Saiga_ghw = Hd_ga.Saiga_ghw
module Local_search = Hd_ga.Local_search

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* --- operators preserve permutations --- *)

let perm_gen = QCheck.Gen.(pair (2 -- 20) int)

let prop_crossover_permutation op =
  QCheck.Test.make ~count:300
    ~name:(Printf.sprintf "%s yields a permutation" (Crossover.name op))
    (QCheck.make perm_gen)
    (fun (n, seed) ->
      let rng = Random.State.make [| seed |] in
      let p1 = Ordering.random rng n and p2 = Ordering.random rng n in
      let child = Crossover.apply op rng p1 p2 in
      Ordering.is_permutation child)

let prop_mutation_permutation op =
  QCheck.Test.make ~count:300
    ~name:(Printf.sprintf "%s yields a permutation" (Mutation.name op))
    (QCheck.make perm_gen)
    (fun (n, seed) ->
      let rng = Random.State.make [| seed |] in
      let sigma = Ordering.random rng n in
      Mutation.apply op rng sigma;
      Ordering.is_permutation sigma)

let test_crossover_identical_parents () =
  (* crossing a permutation with itself must reproduce it *)
  let rng = Random.State.make [| 5 |] in
  List.iter
    (fun op ->
      for _ = 1 to 20 do
        let p = Ordering.random rng 12 in
        let child = Crossover.apply op rng p p in
        Alcotest.(check (array int))
          (Crossover.name op ^ " self-cross")
          p child
      done)
    Crossover.all

let test_names_roundtrip () =
  List.iter
    (fun op ->
      check "crossover name roundtrip" true
        (Crossover.of_name (Crossover.name op) = Some op))
    Crossover.all;
  List.iter
    (fun op ->
      check "mutation name roundtrip" true
        (Mutation.of_name (Mutation.name op) = Some op))
    Mutation.all;
  check "unknown crossover" true (Crossover.of_name "nope" = None);
  check "unknown mutation" true (Mutation.of_name "nope" = None)

(* --- engine behaviour --- *)

let small_config ?(population_size = 30) ?(max_iterations = 60) () =
  Ga_engine.default_config ~population_size ~max_iterations ~seed:7 ()

let test_engine_finds_sorted_minimum () =
  (* fitness = number of inversions: minimum 0 at the identity *)
  let inversions sigma =
    let n = Array.length sigma in
    let count = ref 0 in
    for i = 0 to n - 1 do
      for j = i + 1 to n - 1 do
        if sigma.(i) > sigma.(j) then incr count
      done
    done;
    !count
  in
  let config =
    { (small_config ~max_iterations:150 ()) with Ga_engine.target = Some 0 }
  in
  let report = Ga_engine.run config ~n_genes:8 ~eval:inversions in
  check_int "inversion minimum found" 0 report.Ga_engine.best;
  check "witness is identity" true
    (report.Ga_engine.best_individual = Ordering.identity 8)

let test_engine_improvements_monotone () =
  let config = small_config () in
  let g = Graph.grid 4 4 in
  let report = Ga_tw.run config g in
  let fits = List.map snd report.Ga_engine.improvements in
  let rec decreasing = function
    | a :: (b :: _ as rest) -> a > b && decreasing rest
    | _ -> true
  in
  check "improvements strictly decrease" true (decreasing fits);
  check "evaluations counted" true (report.Ga_engine.evaluations > 0)

let test_ga_tw_known () =
  (* GA fitness is an upper bound and small instances are solved
     exactly *)
  let config = small_config () in
  check_int "path tw 1" 1 (Ga_tw.run config (Graph.path 8)).Ga_engine.best;
  check_int "cycle tw 2" 2 (Ga_tw.run config (Graph.cycle 8)).Ga_engine.best;
  check_int "K5 tw 4" 4 (Ga_tw.run config (Graph.complete 5)).Ga_engine.best;
  check_int "grid3 tw 3" 3 (Ga_tw.run config (Graph.grid 3 3)).Ga_engine.best

let test_ga_tw_decomposition () =
  let config = small_config () in
  let g = Graph.grid 3 3 in
  let report = Ga_tw.run config g in
  let td = Ga_tw.decomposition g report in
  check "decomposition valid" true
    (Hd_core.Tree_decomposition.valid_for_graph g td);
  check_int "decomposition width = fitness" report.Ga_engine.best
    (Hd_core.Tree_decomposition.width td)

let test_ga_ghw_known () =
  let config = small_config () in
  let h = Hypergraph.of_graph (Graph.complete 6) in
  check_int "K6 ghw 3" 3 (Ga_ghw.run config h).Ga_engine.best;
  let acyclic = Hypergraph.create ~n:6 [ [ 0; 1; 2 ]; [ 2; 3 ]; [ 3; 4; 5 ] ] in
  check_int "acyclic ghw 1" 1 (Ga_ghw.run config acyclic).Ga_engine.best

let test_ga_ghw_decomposition () =
  let config = small_config () in
  let h = Hypergraph.of_graph (Graph.cycle 6) in
  let report = Ga_ghw.run config h in
  let ghd = Ga_ghw.decomposition h report in
  check "ghd valid" true (Hd_core.Ghd.valid h ghd);
  check "exact cover no worse than greedy fitness" true
    (Hd_core.Ghd.width ghd <= report.Ga_engine.best)

let prop_ga_tw_ge_astar =
  QCheck.Test.make ~count:15 ~name:"GA-tw >= exact treewidth"
    QCheck.(make QCheck.Gen.(pair (3 -- 7) int))
    (fun (n, seed) ->
      let rng = Random.State.make [| seed |] in
      let g = Graph.create n in
      for u = 0 to n - 1 do
        for v = u + 1 to n - 1 do
          if Random.State.float rng 1.0 < 0.5 then Graph.add_edge g u v
        done
      done;
      let exact =
        match (Hd_search.Astar_tw.solve g).Hd_search.Search_types.outcome with
        | Hd_search.Search_types.Exact w -> w
        | Hd_search.Search_types.Bounds _ -> -1
      in
      let ga = (Ga_tw.run (small_config ()) g).Ga_engine.best in
      ga >= exact)

let test_saiga () =
  let h = Hypergraph.of_graph (Graph.complete 6) in
  let config =
    Saiga_ghw.default_config ~n_islands:3 ~island_population:20 ~epoch_length:5
      ~max_epochs:8 ()
  in
  let report = Saiga_ghw.run config h in
  check_int "SAIGA K6 ghw 3" 3 report.Saiga_ghw.best;
  check "params adapted in range" true
    (Array.for_all
       (fun p ->
         p.Ga_engine.mutation_rate >= 0.01
         && p.Ga_engine.mutation_rate <= 1.0
         && p.Ga_engine.crossover_rate >= 0.1
         && p.Ga_engine.crossover_rate <= 1.0
         && p.Ga_engine.tournament_size >= 2
         && p.Ga_engine.tournament_size <= 8)
       report.Saiga_ghw.final_params);
  check "witness is permutation" true
    (Ordering.is_permutation report.Saiga_ghw.best_individual)

let test_saiga_target_stops () =
  let h = Hypergraph.create ~n:4 [ [ 0; 1; 2; 3 ] ] in
  let config =
    {
      (Saiga_ghw.default_config ~n_islands:2 ~island_population:10
         ~epoch_length:2 ~max_epochs:50 ())
      with
      Saiga_ghw.target = Some 1;
    }
  in
  let report = Saiga_ghw.run config h in
  check_int "hits width 1" 1 report.Saiga_ghw.best;
  check "stops early" true (report.Saiga_ghw.epochs <= 2)



let test_engine_time_limit () =
  let config =
    { (small_config ~max_iterations:1_000_000 ()) with
      Ga_engine.time_limit = Some 0.2 }
  in
  let slow_eval sigma =
    ignore (Array.fold_left ( + ) 0 sigma);
    Array.length sigma
  in
  let report, elapsed =
    Hd_engine.Clock.time @@ fun () ->
    Ga_engine.run config ~n_genes:30 ~eval:slow_eval
  in
  check "stopped by time" true (elapsed < 5.0);
  check "ran some iterations" true (report.Ga_engine.iterations > 0)

let test_engine_deterministic () =
  let g = Graph.grid 4 4 in
  let r1 = Ga_tw.run (small_config ()) g in
  let r2 = Ga_tw.run (small_config ()) g in
  check_int "same best" r1.Ga_engine.best r2.Ga_engine.best;
  Alcotest.(check (array int)) "same witness" r1.Ga_engine.best_individual
    r2.Ga_engine.best_individual

let test_operators_tiny () =
  (* size-1 and size-2 permutations never break *)
  let rng = Random.State.make [| 1 |] in
  List.iter
    (fun op ->
      Alcotest.(check (array int))
        (Crossover.name op ^ " singleton")
        [| 0 |]
        (Crossover.apply op rng [| 0 |] [| 0 |]);
      for _ = 1 to 20 do
        let c = Crossover.apply op rng [| 0; 1 |] [| 1; 0 |] in
        check "pair perm" true (Ordering.is_permutation c)
      done)
    Crossover.all;
  List.iter
    (fun op ->
      let s = [| 0 |] in
      Mutation.apply op rng s;
      Alcotest.(check (array int)) (Mutation.name op ^ " singleton") [| 0 |] s)
    Mutation.all

(* --- local search --- *)

let test_sa_known () =
  let config = Local_search.default_config ~max_steps:8000 () in
  check_int "SA path tw 1" 1 (Local_search.sa_tw config (Graph.path 8)).Local_search.best;
  check_int "SA K5 tw 4" 4 (Local_search.sa_tw config (Graph.complete 5)).Local_search.best;
  check_int "SA grid3 tw 3" 3 (Local_search.sa_tw config (Graph.grid 3 3)).Local_search.best;
  let h = Hypergraph.of_graph (Graph.complete 6) in
  check_int "SA K6 ghw 3" 3 (Local_search.sa_ghw config h).Local_search.best

let test_ils () =
  let config = Local_search.default_config ~max_steps:8000 () in
  let g = Graph.grid 4 4 in
  let ws = Hd_core.Eval.of_graph g in
  let report =
    Local_search.iterated_local_search config ~n_genes:16
      ~eval:(Hd_core.Eval.tw_width ws)
  in
  check "ILS finds grid4 tw <= 5" true (report.Local_search.best <= 5);
  check "witness is permutation" true
    (Ordering.is_permutation report.Local_search.best_individual);
  check_int "witness width matches" report.Local_search.best
    (Hd_core.Eval.tw_width ws report.Local_search.best_individual)

let test_sa_target_stops () =
  (* on K5 every ordering has width 4, so the target is met at the
     initial evaluation and no step runs *)
  let config =
    { (Local_search.default_config ~max_steps:1_000_000 ()) with
      Local_search.target = Some 4 }
  in
  let report = Local_search.sa_tw config (Graph.complete 5) in
  check_int "target reached" 4 report.Local_search.best;
  check_int "stopped immediately" 0 report.Local_search.steps

(* --- weighted triangulation objective (Section 4.5) --- *)

let test_weighted_width () =
  let g = Graph.path 3 in
  let ws = Hd_core.Eval.of_graph g in
  (* ordering (1,2,0): bags {0},{2,1},{1,0}...  all domains 2 =>
     weight = log2(sum of 2^|bag|) *)
  let w = Hd_core.Eval.weighted_width ws ~domain_sizes:[| 2; 2; 2 |] [| 1; 2; 0 |] in
  (* bags when eliminating 0 then 2 then 1: {0,1}, {2,1}, {1}:
     4 + 4 + 2 = 10 *)
  Alcotest.(check (float 1e-9)) "weight" (log (float_of_int 10) /. log 2.0) w;
  (* a bad ordering has heavier tables *)
  let bad = Hd_core.Eval.weighted_width ws ~domain_sizes:[| 2; 2; 2 |] [| 0; 2; 1 |] in
  check "middle-first ordering heavier" true (bad > w)

let test_ga_weighted () =
  let g = Graph.grid 3 3 in
  let domain_sizes = Array.make 9 2 in
  let config = small_config () in
  let report = Hd_ga.Ga_tw.run_weighted config g ~domain_sizes in
  check "weighted GA returns permutation" true
    (Ordering.is_permutation report.Ga_engine.best_individual);
  (* optimal width-3 decompositions of grid3 have total table size
     well under 2^7 *)
  check "weight sane" true (report.Ga_engine.best <= 64 * 7)

(* --- suffix re-evaluation --- *)

module Suffix_eval = Hd_ga.Suffix_eval
module Obs = Hd_obs.Obs

let with_obs f =
  Obs.enable ();
  Obs.reset ();
  Fun.protect ~finally:(fun () -> Obs.disable ()) f

let counter name = Obs.Counter.value (Obs.Counter.make name)

let random_graph rng n p =
  let g = Graph.create n in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      if Random.State.float rng 1.0 < p then Graph.add_edge g u v
    done
  done;
  g

(* walk a workspace through a chain of mutated orderings (exercising
   suffix restarts of every depth) and compare every width against an
   independent from-scratch evaluation *)
let prop_suffix_eval_tw =
  QCheck.Test.make ~count:150 ~name:"Suffix_eval tw = Eval.tw_width under mutation"
    QCheck.(make QCheck.Gen.(triple (1 -- 14) int int))
    (fun (n, gseed, seed) ->
      let rng = Random.State.make [| gseed |] in
      let g = random_graph rng n (Random.State.float rng 1.0) in
      let ws = Suffix_eval.of_graph g in
      let ref_ws = Hd_core.Eval.of_graph g in
      let rng = Random.State.make [| seed |] in
      let sigma = Ordering.random rng n in
      let ok = ref true in
      for _ = 1 to 12 do
        ok :=
          !ok && Suffix_eval.width ws sigma = Hd_core.Eval.tw_width ref_ws sigma;
        (* mutate in place: a random transposition changes a random
           position, leaving a random-length suffix intact *)
        let i = Random.State.int rng n and j = Random.State.int rng n in
        let t = sigma.(i) in
        sigma.(i) <- sigma.(j);
        sigma.(j) <- t
      done;
      !ok)

let prop_suffix_eval_ghw =
  QCheck.Test.make ~count:100
    ~name:"Suffix_eval ghw = width_full on fresh workspace"
    QCheck.(make QCheck.Gen.(triple (2 -- 10) int int))
    (fun (n, gseed, seed) ->
      let rng = Random.State.make [| gseed |] in
      let edges = ref [] in
      for _ = 1 to max 2 (n / 2) do
        let a = Random.State.int rng n and b = Random.State.int rng n in
        let c = Random.State.int rng n in
        edges := List.sort_uniq compare [ a; b; c ] :: !edges
      done;
      (* cover every vertex so ghw is defined *)
      for v = 0 to n - 1 do
        edges := [ v ] :: !edges
      done;
      let h = Hypergraph.create ~n !edges in
      let ws = Suffix_eval.of_hypergraph ~seed:11 h in
      let rng = Random.State.make [| seed |] in
      let sigma = Ordering.random rng n in
      let ok = ref true in
      for _ = 1 to 8 do
        (* per-bag deterministic tie-breaking makes the suffix-reusing
           width equal to a from-scratch one on a fresh workspace *)
        let fresh = Suffix_eval.of_hypergraph ~seed:11 h in
        ok := !ok && Suffix_eval.width ws sigma = Suffix_eval.width_full fresh sigma;
        let i = Random.State.int rng n and j = Random.State.int rng n in
        let t = sigma.(i) in
        sigma.(i) <- sigma.(j);
        sigma.(j) <- t
      done;
      !ok)

let test_suffix_reeval_counters () =
  with_obs @@ fun () ->
  let g = Graph.grid 5 5 in
  let n = Graph.n g in
  let ws = Suffix_eval.of_graph g in
  let sigma = Ordering.identity n in
  let w0 = Suffix_eval.width ws sigma in
  check_int "first eval is full" 1 (counter "ga.full_reevals");
  (* change only position 0: the whole suffix 1..n-1 is shared *)
  let sigma' = Array.copy sigma in
  let t = sigma'.(0) in
  sigma'.(0) <- sigma'.(1);
  sigma'.(1) <- t;
  let w1 = Suffix_eval.width ws sigma' in
  check "suffix path taken" true (counter "ga.suffix_reevals" > 0);
  let ref_ws = Hd_core.Eval.of_graph g in
  check_int "full width agrees" (Hd_core.Eval.tw_width ref_ws sigma) w0;
  check_int "suffix width agrees" (Hd_core.Eval.tw_width ref_ws sigma') w1

let test_suffix_eval_ga_smoke () =
  with_obs @@ fun () ->
  (* the wired GA must exercise the suffix path and stay correct *)
  let g = Graph.grid 4 4 in
  let config = small_config () in
  let report = Ga_tw.run config g in
  check "GA best individual is a permutation" true
    (Ordering.is_permutation report.Ga_engine.best_individual);
  let ref_ws = Hd_core.Eval.of_graph g in
  check_int "GA best fitness consistent" report.Ga_engine.best
    (Hd_core.Eval.tw_width ref_ws report.Ga_engine.best_individual);
  check "GA run takes suffix path" true (counter "ga.suffix_reevals" > 0)

let () =
  Alcotest.run "ga"
    [
      ( "operators",
        [
          Alcotest.test_case "self-crossover" `Quick test_crossover_identical_parents;
          Alcotest.test_case "names" `Quick test_names_roundtrip;
        ]
        @ List.map QCheck_alcotest.to_alcotest
            (List.map prop_crossover_permutation Crossover.all
            @ List.map prop_mutation_permutation Mutation.all) );
      ( "engine",
        [
          Alcotest.test_case "sorts permutations" `Quick test_engine_finds_sorted_minimum;
          Alcotest.test_case "monotone improvements" `Quick test_engine_improvements_monotone;
          Alcotest.test_case "time limit" `Quick test_engine_time_limit;
          Alcotest.test_case "deterministic per seed" `Quick test_engine_deterministic;
          Alcotest.test_case "tiny permutations" `Quick test_operators_tiny;
        ] );
      ( "ga-tw",
        [
          Alcotest.test_case "known treewidths" `Quick test_ga_tw_known;
          Alcotest.test_case "decomposition witness" `Quick test_ga_tw_decomposition;
        ]
        @ List.map QCheck_alcotest.to_alcotest [ prop_ga_tw_ge_astar ] );
      ( "ga-ghw",
        [
          Alcotest.test_case "known widths" `Quick test_ga_ghw_known;
          Alcotest.test_case "decomposition witness" `Quick test_ga_ghw_decomposition;
        ] );
      ( "local search",
        [
          Alcotest.test_case "SA known widths" `Quick test_sa_known;
          Alcotest.test_case "ILS" `Quick test_ils;
          Alcotest.test_case "SA target stop" `Quick test_sa_target_stops;
        ] );
      ( "weighted objective",
        [
          Alcotest.test_case "weighted width" `Quick test_weighted_width;
          Alcotest.test_case "weighted GA" `Quick test_ga_weighted;
        ] );
      ( "suffix eval",
        [
          Alcotest.test_case "counters + agreement" `Quick
            test_suffix_reeval_counters;
          Alcotest.test_case "GA smoke via suffix eval" `Quick
            test_suffix_eval_ga_smoke;
        ]
        @ List.map QCheck_alcotest.to_alcotest
            [ prop_suffix_eval_tw; prop_suffix_eval_ghw ] );
      ( "saiga",
        [
          Alcotest.test_case "self-adaptive islands" `Quick test_saiga;
          Alcotest.test_case "target stop" `Quick test_saiga_target_stops;
        ] );
    ]
