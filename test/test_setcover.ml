module Hypergraph = Hd_hypergraph.Hypergraph
module Set_cover = Hd_setcover.Set_cover
module Bitset = Hd_graph.Bitset
module Simplex = Hd_setcover.Simplex
module Fractional = Hd_setcover.Fractional

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let problem ~n ~edges ~universe =
  {
    Set_cover.universe = Bitset.of_list n universe;
    hypergraph = Hypergraph.create ~n edges;
  }

let test_greedy_simple () =
  let p =
    problem ~n:6
      ~edges:[ [ 0; 1; 2 ]; [ 2; 3 ]; [ 3; 4; 5 ]; [ 0; 5 ] ]
      ~universe:[ 0; 1; 2; 3; 4; 5 ]
  in
  let chosen = Set_cover.greedy p in
  check "covers" true (Set_cover.is_cover p chosen);
  check_int "greedy optimal here" 2 (List.length chosen)

let test_exact_beats_greedy () =
  (* the classical greedy trap: greedy picks the big middle set and
     needs 3, the optimum is 2 *)
  let p =
    problem ~n:8
      ~edges:[ [ 0; 1; 2; 3 ]; [ 4; 5; 6; 7 ]; [ 2; 3; 4; 5; 6 ] ]
      ~universe:[ 0; 1; 2; 3; 4; 5; 6; 7 ]
  in
  let exact = Set_cover.exact p in
  check "exact covers" true (Set_cover.is_cover p exact);
  check_int "exact size" 2 (List.length exact)

let test_empty_universe () =
  let p = problem ~n:3 ~edges:[ [ 0; 1 ] ] ~universe:[] in
  check_int "greedy empty" 0 (List.length (Set_cover.greedy p));
  check_int "exact empty" 0 (List.length (Set_cover.exact p))

let test_uncoverable () =
  let p = problem ~n:3 ~edges:[ [ 0 ] ] ~universe:[ 0; 2 ] in
  check "greedy raises" true
    (try
       ignore (Set_cover.greedy p);
       false
     with Invalid_argument _ -> true)

let test_lower_bound () =
  check_int "ceil(7/3)" 3
    (Set_cover.cover_size_lower_bound ~universe_size:7 ~max_set_size:3);
  check_int "exact fit" 2
    (Set_cover.cover_size_lower_bound ~universe_size:6 ~max_set_size:3);
  check_int "empty" 0
    (Set_cover.cover_size_lower_bound ~universe_size:0 ~max_set_size:3)

let test_cache () =
  let cache = Hashtbl.create 8 in
  let p =
    problem ~n:4 ~edges:[ [ 0; 1 ]; [ 2; 3 ]; [ 1; 2 ] ] ~universe:[ 0; 1; 2; 3 ]
  in
  let s1 = Set_cover.exact_size ~cache p in
  let s2 = Set_cover.exact_size ~cache p in
  check_int "stable" s1 s2;
  check_int "cached entries" 1 (Hashtbl.length cache)

(* brute force optimum for small instances *)
let brute_force p m =
  let best = ref max_int in
  for mask = 0 to (1 lsl m) - 1 do
    let chosen = List.filter (fun i -> mask land (1 lsl i) <> 0) (List.init m Fun.id) in
    if Set_cover.is_cover p chosen then
      best := min !best (List.length chosen)
  done;
  !best

let prop_exact_optimal =
  QCheck.Test.make ~count:150 ~name:"exact matches brute force"
    QCheck.(make QCheck.Gen.(pair (1 -- 7) int))
    (fun (n, seed) ->
      let rng = Random.State.make [| seed |] in
      let m = 1 + Random.State.int rng 6 in
      let edges =
        List.init m (fun _ ->
            let size = 1 + Random.State.int rng 3 in
            List.init size (fun _ -> Random.State.int rng n))
      in
      let h = Hypergraph.create ~n edges in
      (* universe: only coverable vertices *)
      let universe =
        List.filter (fun v -> Hypergraph.incident h v <> []) (List.init n Fun.id)
      in
      let p = { Set_cover.universe = Bitset.of_list n universe; hypergraph = h } in
      let exact = Set_cover.exact p in
      Set_cover.is_cover p exact
      && List.length exact = brute_force p m
      && List.length exact <= List.length (Set_cover.greedy p))

let prop_greedy_covers =
  QCheck.Test.make ~count:150 ~name:"greedy always covers"
    QCheck.(make QCheck.Gen.(pair (1 -- 10) int))
    (fun (n, seed) ->
      let rng = Random.State.make [| seed |] in
      let m = 1 + Random.State.int rng 8 in
      let edges =
        List.init m (fun _ ->
            let size = 1 + Random.State.int rng 4 in
            List.init size (fun _ -> Random.State.int rng n))
      in
      let h = Hypergraph.create ~n edges in
      let universe =
        List.filter (fun v -> Hypergraph.incident h v <> []) (List.init n Fun.id)
      in
      let p = { Set_cover.universe = Bitset.of_list n universe; hypergraph = h } in
      Set_cover.is_cover p (Set_cover.greedy ~rng p))


(* --- simplex --- *)

let optimal_value = function
  | Simplex.Optimal { value; _ } -> value
  | Simplex.Infeasible -> Alcotest.fail "unexpected infeasible"
  | Simplex.Unbounded -> Alcotest.fail "unexpected unbounded"

let test_simplex_basic () =
  (* min x + y subject to x + y >= 2, x >= 0.5 *)
  let outcome =
    Simplex.minimize ~objective:[| 1.0; 1.0 |]
      ~constraints:[| [| 1.0; 1.0 |]; [| 1.0; 0.0 |] |]
      ~bounds:[| 2.0; 0.5 |]
  in
  Alcotest.(check (float 1e-6)) "value" 2.0 (optimal_value outcome)

let test_simplex_fractional_optimum () =
  (* min x1 + x2 + x3 with pairwise-sum constraints: the triangle LP,
     optimum 1.5 at x = (0.5, 0.5, 0.5) *)
  let outcome =
    Simplex.minimize ~objective:[| 1.0; 1.0; 1.0 |]
      ~constraints:
        [| [| 1.0; 1.0; 0.0 |]; [| 0.0; 1.0; 1.0 |]; [| 1.0; 0.0; 1.0 |] |]
      ~bounds:[| 1.0; 1.0; 1.0 |]
  in
  Alcotest.(check (float 1e-6)) "triangle LP" 1.5 (optimal_value outcome)

let test_simplex_infeasible_unbounded () =
  (* 0x >= 1 is infeasible *)
  (match
     Simplex.minimize ~objective:[| 1.0 |] ~constraints:[| [| 0.0 |] |]
       ~bounds:[| 1.0 |]
   with
  | Simplex.Infeasible -> ()
  | _ -> Alcotest.fail "expected infeasible");
  (* min -x with x >= 1 is unbounded below *)
  match
    Simplex.minimize ~objective:[| -1.0 |] ~constraints:[| [| 1.0 |] |]
      ~bounds:[| 1.0 |]
  with
  | Simplex.Unbounded -> ()
  | _ -> Alcotest.fail "expected unbounded"

let test_simplex_redundant_rows () =
  let outcome =
    Simplex.minimize ~objective:[| 2.0; 3.0 |]
      ~constraints:[| [| 1.0; 1.0 |]; [| 2.0; 2.0 |] |]
      ~bounds:[| 1.0; 2.0 |]
  in
  Alcotest.(check (float 1e-6)) "redundant" 2.0 (optimal_value outcome)

(* --- fractional covers (exact rational) --- *)

module Rat = Hd_lp.Rat

let rat = Alcotest.testable Rat.pp Rat.equal

let test_fractional_triangle_gap () =
  (* the triangle: integral cover 2, fractional exactly 3/2 *)
  let p =
    problem ~n:3 ~edges:[ [ 0; 1 ]; [ 1; 2 ]; [ 0; 2 ] ] ~universe:[ 0; 1; 2 ]
  in
  Alcotest.check rat "rho*" (Rat.make 3 2) (Fractional.cover_value p);
  check_int "integral" 2 (List.length (Set_cover.exact p))

let test_fractional_clique () =
  (* K6 as binary edges: rho* of all six vertices = exactly 3 *)
  let edges = ref [] in
  for u = 0 to 5 do
    for v = u + 1 to 5 do
      edges := [ u; v ] :: !edges
    done
  done;
  let p = problem ~n:6 ~edges:!edges ~universe:[ 0; 1; 2; 3; 4; 5 ] in
  Alcotest.check rat "K6 rho*" (Rat.of_int 3) (Fractional.cover_value p)

let test_fractional_single_edge () =
  let p = problem ~n:4 ~edges:[ [ 0; 1; 2; 3 ] ] ~universe:[ 0; 1; 2; 3 ] in
  Alcotest.check rat "one edge" Rat.one (Fractional.cover_value p);
  let p0 = problem ~n:4 ~edges:[ [ 0 ] ] ~universe:[] in
  Alcotest.check rat "empty bag" Rat.zero (Fractional.cover_value p0)

let test_fractional_verify_rejects () =
  (* verify must reject short weight and negative weight vectors *)
  let p =
    problem ~n:3 ~edges:[ [ 0; 1 ]; [ 1; 2 ]; [ 0; 2 ] ] ~universe:[ 0; 1; 2 ]
  in
  let _, weights = Fractional.cover p in
  Alcotest.(check bool) "optimal cover verifies" true (Fractional.verify p weights);
  let short = [ (0, Rat.make 1 2); (1, Rat.make 1 2); (2, Rat.make 1 4) ] in
  Alcotest.(check bool) "deficient cover rejected" false (Fractional.verify p short);
  let negative = [ (0, Rat.of_int 2); (1, Rat.of_int 2); (2, Rat.make (-1) 2) ] in
  Alcotest.(check bool) "negative weight rejected" false
    (Fractional.verify p negative)

let prop_fractional_bounds =
  QCheck.Test.make ~count:120
    ~name:"|U|/k <= rho* <= exact integral cover, weights feasible"
    QCheck.(make QCheck.Gen.(pair (1 -- 7) int))
    (fun (n, seed) ->
      let rng = Random.State.make [| seed |] in
      let m = 1 + Random.State.int rng 6 in
      let edges =
        List.init m (fun _ ->
            let size = 1 + Random.State.int rng 3 in
            List.init size (fun _ -> Random.State.int rng n))
      in
      let h = Hypergraph.create ~n edges in
      let universe =
        List.filter (fun v -> Hypergraph.incident h v <> []) (List.init n Fun.id)
      in
      let p = { Set_cover.universe = Bitset.of_list n universe; hypergraph = h } in
      let rho, weights = Fractional.cover p in
      let integral = Rat.of_int (List.length (Set_cover.exact p)) in
      let lower =
        Rat.make (List.length universe) (max 1 (Hypergraph.max_edge_size h))
      in
      (* all comparisons exact: no epsilons anywhere *)
      Rat.compare rho integral <= 0
      && Rat.compare rho lower >= 0
      && Fractional.verify p weights)

let () =
  Alcotest.run "setcover"
    [
      ( "unit",
        [
          Alcotest.test_case "greedy simple" `Quick test_greedy_simple;
          Alcotest.test_case "exact beats greedy" `Quick test_exact_beats_greedy;
          Alcotest.test_case "empty universe" `Quick test_empty_universe;
          Alcotest.test_case "uncoverable" `Quick test_uncoverable;
          Alcotest.test_case "k-set-cover bound" `Quick test_lower_bound;
          Alcotest.test_case "cache" `Quick test_cache;
        ] );
      ( "simplex",
        [
          Alcotest.test_case "basic" `Quick test_simplex_basic;
          Alcotest.test_case "triangle LP" `Quick test_simplex_fractional_optimum;
          Alcotest.test_case "infeasible/unbounded" `Quick test_simplex_infeasible_unbounded;
          Alcotest.test_case "redundant rows" `Quick test_simplex_redundant_rows;
        ] );
      ( "fractional",
        [
          Alcotest.test_case "triangle gap" `Quick test_fractional_triangle_gap;
          Alcotest.test_case "clique" `Quick test_fractional_clique;
          Alcotest.test_case "single edge" `Quick test_fractional_single_edge;
          Alcotest.test_case "verify rejects" `Quick test_fractional_verify_rejects;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_exact_optimal; prop_greedy_covers; prop_fractional_bounds ] );
    ]
