(* hd_engine: budgets, the solver registry, and decompose-by-blocks.

   Also enforces the timing-source invariant of the refactor: outside
   lib/engine and lib/obs, no module reads the wall clock directly —
   every deadline goes through Budget, every measurement through
   Clock. *)

module Graph = Hd_graph.Graph
module Hypergraph = Hd_hypergraph.Hypergraph
module Td = Hd_core.Tree_decomposition
module Ghd = Hd_core.Ghd
module B = Hd_engine.Budget
module S = Hd_engine.Solver
module Blocks = Hd_engine.Blocks
module Engine = Hd_engine.Engine
module Obs = Hd_obs.Obs

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let ensure_registry () =
  Hd_search.Solvers.ensure ();
  Hd_ga.Solvers.ensure ()

(* ------------------------------------------------------------------ *)
(* Clock                                                               *)
(* ------------------------------------------------------------------ *)

let test_clock_monotonic () =
  let prev = ref (Hd_engine.Clock.now ()) in
  for _ = 1 to 10_000 do
    let t = Hd_engine.Clock.now () in
    check "non-decreasing" true (t >= !prev);
    prev := t
  done

let test_clock_time () =
  let x, secs = Hd_engine.Clock.time (fun () -> 41 + 1) in
  check_int "result" 42 x;
  check "elapsed >= 0" true (secs >= 0.0)

(* ------------------------------------------------------------------ *)
(* Budget                                                              *)
(* ------------------------------------------------------------------ *)

let test_budget_starts_on_run () =
  (* creating a budget must not start its clock: the deadline counts
     from the first start/ticker, not from construction *)
  let b = B.create ~time_limit:10.0 () in
  Unix.sleepf 0.05;
  check "not started by create" false (B.started b);
  check "elapsed 0 before start" true (B.elapsed b = 0.0);
  B.start b;
  check "started" true (B.started b);
  check "sleep before start not counted" true (B.elapsed b < 0.04)

let test_budget_sub_rollover () =
  (* sub-budgets split the time *remaining*, so what stage 1 leaves
     unspent rolls over: with ~9s left, a 3-way split gives ~3s and a
     later 2-way split gives ~4.5s, not a fixed 9/3 = 3s *)
  let b = B.create ~time_limit:9.0 () in
  B.start b;
  let s1 = B.sub ~stages:3 b in
  (match B.time_limit s1 with
  | Some t -> check "first split ~ 3s" true (t > 2.5 && t <= 3.0)
  | None -> Alcotest.fail "sub of a timed budget must be timed");
  let s2 = B.sub ~stages:2 b in
  (match B.time_limit s2 with
  | Some t -> check "rollover: later split > 4s" true (t > 4.0)
  | None -> Alcotest.fail "sub of a timed budget must be timed");
  (* the sub shares the parent's cancel flag but never its incumbent *)
  let inc = Hd_core.Incumbent.create () in
  let p = B.create ~incumbent:inc () in
  let s = B.sub p in
  check "sub drops incumbent" true (B.incumbent s = None);
  B.cancel p;
  check "sub shares cancellation" true (B.cancelled s)

let test_ticker_max_states () =
  let b = B.create ~max_states:10 () in
  let tk = B.ticker b in
  for _ = 1 to 10 do
    B.tick_generated tk
  done;
  check "at the cap: not out" false (B.out_of_budget tk);
  B.tick_generated tk;
  check "over the cap: out" true (B.out_of_budget tk);
  check "latched" true (B.out_of_budget tk);
  check_int "generated counted" 11 (B.generated tk)

let test_ticker_expired_deadline () =
  let b = B.create ~time_limit:(-1.0) () in
  let tk = B.ticker b in
  check "already expired" true (B.out_of_budget tk)

let test_ticker_cancellation_counter () =
  Obs.enable ();
  Obs.reset ();
  let counter () =
    Obs.Counter.value (Obs.Counter.make "engine.cancellations")
  in
  let before = counter () in
  let b = B.create () in
  let tk = B.ticker b in
  check "unlimited budget never trips" false (B.out_of_budget tk);
  B.cancel b;
  check "cancelled" true (B.out_of_budget tk);
  check_int "engine.cancellations incremented" (before + 1) (counter ());
  check "latched after cancel" true (B.out_of_budget tk);
  check_int "counted once" (before + 1) (counter ());
  Obs.disable ()

let test_budget_remaining_clamped () =
  (* regression: past the deadline, [remaining] (and the spec derived
     from it) used to go negative, so a sub-budget cut after expiry got
     a *negative* time limit — later arithmetic treated it as slack *)
  let b = B.create ~time_limit:0.01 () in
  B.start b;
  Unix.sleepf 0.03;
  (match B.remaining b with
  | Some r -> check "remaining clamped at 0" true (r = 0.0)
  | None -> Alcotest.fail "timed budget must report remaining time");
  (match (B.spec_of b).B.time_limit with
  | Some t -> check "spec_of clamped at 0" true (t = 0.0)
  | None -> Alcotest.fail "timed budget must report a spec limit");
  (* unstarted budgets still report the full limit *)
  let fresh = B.create ~time_limit:5.0 () in
  check "unstarted reports full limit" true (B.remaining fresh = Some 5.0)

let test_budget_sub_own_cancel_flag () =
  (* regression: sub-budgets used to share the parent's cancellation
     cell outright, so cancelling one block's budget killed its
     siblings and the rest of the split was skipped *)
  let b = B.create () in
  let s1 = B.sub b in
  let s2 = B.sub b in
  B.cancel s1;
  check "cancelled sub is cancelled" true (B.cancelled s1);
  check "sibling unaffected" false (B.cancelled s2);
  check "parent unaffected" false (B.cancelled b);
  B.cancel b;
  check "parent cancel reaches all subs" true
    (B.cancelled s1 && B.cancelled s2);
  (* end to end: block solving still succeeds after a sibling cancel —
     two triangles joined at a cut vertex split into two blocks, each
     solved under its own sub of the same parent *)
  ensure_registry ();
  let g =
    Graph.of_edges 5 [ (0, 1); (1, 2); (0, 2); (2, 3); (3, 4); (2, 4) ]
  in
  let parent = B.create () in
  B.cancel (B.sub parent);
  let r =
    Engine.run_by_name "bb-tw" parent (S.Graph g)
  in
  (match r.S.outcome with
  | S.Exact w -> check_int "two triangles: tw 2 after sibling cancel" 2 w
  | S.Bounds _ -> Alcotest.fail "uncancelled blocks must still solve exactly")

let test_spec_equation () =
  (* Search_types.budget is literally Budget.spec: the historical
     record syntax keeps working across the whole search layer *)
  let spec = { Hd_search.Search_types.time_limit = Some 1.5; max_states = Some 7 } in
  let b = B.of_spec spec in
  check "time_limit carried" true (B.time_limit b = Some 1.5);
  check "max_states carried" true (B.max_states b = Some 7)

(* ------------------------------------------------------------------ *)
(* Blocks                                                              *)
(* ------------------------------------------------------------------ *)

let roots blocks =
  List.length (List.filter (fun b -> b.Blocks.attach = -1) blocks)

let test_split_path () =
  let g = Graph.of_edges 5 [ (0, 1); (1, 2); (2, 3); (3, 4) ] in
  let blocks = Blocks.split g in
  check_int "path of 5: 4 edge blocks" 4 (List.length blocks);
  List.iter
    (fun b -> check_int "each block is one edge" 2 (Array.length b.Blocks.vertices))
    blocks;
  check_int "one root block" 1 (roots blocks)

let test_split_cycle () =
  let g = Graph.of_edges 5 [ (0, 1); (1, 2); (2, 3); (3, 4); (4, 0) ] in
  let blocks = Blocks.split g in
  check_int "cycle is biconnected" 1 (List.length blocks);
  check_int "whole graph" 5 (Array.length (List.hd blocks).Blocks.vertices);
  check_int "root" 1 (roots blocks)

let test_split_two_triangles () =
  (* two triangles sharing vertex 2: the textbook articulation point *)
  let g = Graph.of_edges 5 [ (0, 1); (1, 2); (2, 0); (2, 3); (3, 4); (4, 2) ] in
  let blocks = Blocks.split g in
  check_int "two blocks" 2 (List.length blocks);
  List.iter
    (fun b -> check_int "triangles" 3 (Array.length b.Blocks.vertices))
    blocks;
  check_int "one root" 1 (roots blocks);
  (* the non-root block attaches at the shared vertex, locally indexed *)
  List.iter
    (fun b ->
      if b.Blocks.attach >= 0 then
        check_int "attach is the cut vertex" 2
          b.Blocks.vertices.(b.Blocks.attach))
    blocks

let test_split_isolated () =
  let g = Graph.create 3 in
  let blocks = Blocks.split g in
  check_int "three singletons" 3 (List.length blocks);
  List.iter
    (fun b ->
      check_int "singleton" 1 (Array.length b.Blocks.vertices);
      check_int "root" (-1) b.Blocks.attach)
    blocks

let test_split_covers_vertices () =
  (* every vertex appears once as a non-attach occurrence *)
  let g = Graph.of_edges 7 [ (0, 1); (1, 2); (2, 0); (2, 3); (3, 4); (5, 6) ] in
  let blocks = Blocks.split g in
  let seen = Array.make 7 0 in
  List.iter
    (fun b ->
      Array.iteri
        (fun i v -> if i <> b.Blocks.attach then seen.(v) <- seen.(v) + 1)
        b.Blocks.vertices)
    blocks;
  Array.iteri (fun v c -> check_int (Printf.sprintf "vertex %d" v) 1 c) seen;
  check_int "one root per component" 2 (roots blocks)

(* ------------------------------------------------------------------ *)
(* Registry                                                            *)
(* ------------------------------------------------------------------ *)

let test_registry_idempotent () =
  ensure_registry ();
  let names = S.names () in
  ensure_registry ();
  check "double ensure keeps the roster" true (names = S.names ());
  check "astar-tw present" true (S.find "astar-tw" <> None);
  check "saiga-ghw present" true (S.find "saiga-ghw" <> None);
  check "unknown absent" true (S.find "no-such-solver" = None)

let test_run_by_name_unknown () =
  ensure_registry ();
  check "unknown name raises" true
    (try
       ignore
         (Engine.run_by_name "no-such-solver" (B.create ())
            (S.Graph (Graph.grid 2 2)));
       false
     with Invalid_argument msg ->
       (* the error lists what IS available *)
       let has_sub needle hay =
         let nl = String.length needle and hl = String.length hay in
         let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
         go 0
       in
       has_sub "bb-tw" msg)

let test_all_solvers_sound_under_tiny_budget () =
  (* every registered solver must return quickly under a 50ms deadline
     with consistent bounds and a witness no better than it claims *)
  ensure_registry ();
  let g = Hd_instances.Graphs.grid 3 in
  let h = Hypergraph.of_graph g in
  List.iter
    (fun (s : S.t) ->
      let problem =
        match s.S.kind with
        | S.Tw -> S.Graph g
        | S.Ghw | S.Fhw | S.Hw -> S.Hypergraph h
      in
      let r, secs =
        Hd_engine.Clock.time @@ fun () ->
        Engine.run ~seed:1 s (B.create ~time_limit:0.05 ()) problem
      in
      let label fmt = Printf.sprintf fmt s.S.name in
      check (label "%s returns promptly") true (secs < 5.0);
      let lb, ub = S.bounds_of r.S.outcome in
      check (label "%s: lb <= ub") true (lb <= ub);
      check (label "%s: positive ub") true (ub >= 0);
      match (r.S.ordering, s.S.kind) with
      | Some sigma, S.Tw ->
          let td = Td.of_ordering g sigma in
          check (label "%s witness valid") true (Td.valid_for_graph g td);
          check (label "%s witness width <= ub") true (Td.width td <= ub)
      | Some sigma, S.Ghw ->
          let ghd = Ghd.of_ordering h sigma ~cover:`Exact in
          check (label "%s witness valid") true (Ghd.valid h ghd);
          check (label "%s witness width <= ub") true (Ghd.width ghd <= ub)
      | _ -> ())
    (S.all ())

(* ------------------------------------------------------------------ *)
(* Decompose-by-blocks: engine results vs monolithic                   *)
(* ------------------------------------------------------------------ *)

let value_of = function
  | S.Exact w -> w
  | S.Bounds _ -> Alcotest.fail "expected an exact outcome on a tiny instance"

let test_blocks_chain_tw () =
  ensure_registry ();
  let core = Hd_instances.Graphs.queen 4 in
  let chain = Hd_instances.Graphs.chain ~copies:3 core in
  let solo =
    value_of
      (Engine.run_by_name ~seed:1 "bb-tw" (B.create ()) (S.Graph core)).S.outcome
  in
  let split =
    Engine.run_by_name ~seed:1 "bb-tw" (B.create ()) (S.Graph chain)
  in
  let mono =
    Engine.run_by_name ~blocks:false ~seed:1 "bb-tw" (B.create ())
      (S.Graph chain)
  in
  check_int "split = solo width" solo (value_of split.S.outcome);
  check_int "mono = solo width" solo (value_of mono.S.outcome);
  (match split.S.ordering with
  | Some sigma ->
      let td = Td.of_ordering chain sigma in
      check "stitched witness valid" true (Td.valid_for_graph chain td);
      check_int "stitched witness width" solo (Td.width td)
  | None -> Alcotest.fail "block-split run must return a witness");
  (* the blocks counters moved *)
  Obs.enable ();
  Obs.reset ();
  ignore (Engine.run_by_name ~seed:1 "bb-tw" (B.create ()) (S.Graph chain));
  let v name = Obs.Counter.value (Obs.Counter.make name) in
  check "engine.blocks >= 3" true (v "engine.blocks" >= 3);
  ignore (Engine.run_by_name ~seed:1 "bb-tw" (B.create ()) (S.Graph core));
  check "engine.block_skips after biconnected input" true
    (v "engine.block_skips" >= 1);
  Obs.disable ()

let prop_blocks_equal_mono_tw =
  QCheck.Test.make ~count:8 ~name:"blocks: tw(chain) = tw(core), split = mono"
    QCheck.(pair (int_bound 1000) (int_range 2 3))
    (fun (seed, copies) ->
      ensure_registry ();
      let core = Hd_instances.Graphs.random_gnp ~seed ~n:6 ~p:0.5 in
      let chain = Hd_instances.Graphs.chain ~copies core in
      let run ?blocks p =
        value_of
          (Engine.run_by_name ?blocks ~seed:1 "bb-tw" (B.create ()) (S.Graph p))
            .S.outcome
      in
      let solo = run core in
      let split_r =
        Engine.run_by_name ~seed:1 "bb-tw" (B.create ()) (S.Graph chain)
      in
      let witness_ok =
        match split_r.S.ordering with
        | Some sigma ->
            let td = Td.of_ordering chain sigma in
            Td.valid_for_graph chain td && Td.width td = solo
        | None -> false
      in
      value_of split_r.S.outcome = solo
      && run ~blocks:false chain = solo
      && witness_ok)

let prop_blocks_equal_mono_ghw =
  QCheck.Test.make ~count:6 ~name:"blocks: ghw(chain) = ghw(core), split = mono"
    QCheck.(int_bound 1000)
    (fun seed ->
      ensure_registry ();
      let core = Hd_instances.Graphs.random_gnp ~seed ~n:5 ~p:0.6 in
      (* of_graph gives one 2-vertex hyperedge per graph edge, so an
         isolated vertex would lie in no hyperedge — not a valid ghw
         instance (bb-ghw rejects it by contract); skip those samples *)
      let no_isolated g =
        let ok = ref true in
        for v = 0 to Graph.n g - 1 do
          if Graph.neighbors g v = [] then ok := false
        done;
        !ok
      in
      QCheck.assume (no_isolated core);
      let chain = Hd_instances.Graphs.chain ~copies:2 core in
      let run ?blocks g =
        value_of
          (Engine.run_by_name ?blocks ~seed:1 "bb-ghw" (B.create ())
             (S.Hypergraph (Hypergraph.of_graph g)))
            .S.outcome
      in
      let solo = run core in
      run chain = solo && run ~blocks:false chain = solo)

(* ------------------------------------------------------------------ *)
(* Blocks through the work-stealing scheduler                          *)
(* ------------------------------------------------------------------ *)

let scheduler_runner s =
  { Hd_engine.Exec.run_all = (fun fns -> Hd_parallel.Scheduler.run_all s fns) }

let test_blocks_parallel_identical () =
  (* with a scheduler runner installed, Engine.run forks the
     biconnected blocks as concurrent tasks — and the full result
     (outcome, stitched witness, state counts) is byte-identical to the
     sequential driver, the -j1 acceptance bar of the refactor *)
  ensure_registry ();
  let chain = Hd_instances.Graphs.chain ~copies:3 (Hd_instances.Graphs.queen 4) in
  let solve budget () =
    Engine.run_by_name ~seed:1 "bb-tw" (budget ()) (S.Graph chain)
  in
  let compare_runs budget =
    let seq = solve budget () in
    let par =
      Hd_parallel.Scheduler.with_scheduler ~workers:2 (fun s ->
          Hd_engine.Exec.with_runner (scheduler_runner s) (solve budget))
    in
    check "outcome identical" true (par.S.outcome = seq.S.outcome);
    check "witness identical" true (par.S.ordering = seq.S.ordering);
    check_int "visited identical" seq.S.visited par.S.visited;
    check_int "generated identical" seq.S.generated par.S.generated
  in
  compare_runs (fun () -> B.create ());
  (* also under a state-capped budget: the equal upfront sub shares
     make the parallel split deterministic there too *)
  compare_runs (fun () -> B.create ~max_states:200_000 ())

let test_blocks_cancel_under_runner () =
  (* the PR 7 sibling-cancel regression, now through the scheduler:
     cancelling one sub of the parent budget must not leak into the
     concurrently-forked block solves *)
  ensure_registry ();
  let g =
    Graph.of_edges 5 [ (0, 1); (1, 2); (0, 2); (2, 3); (3, 4); (4, 2) ]
  in
  Hd_parallel.Scheduler.with_scheduler ~workers:2 (fun s ->
      Hd_engine.Exec.with_runner (scheduler_runner s) (fun () ->
          let parent = B.create () in
          B.cancel (B.sub parent);
          let r = Engine.run_by_name ~seed:1 "bb-tw" parent (S.Graph g) in
          (match r.S.outcome with
          | S.Exact w ->
              check_int "two triangles: tw 2 under concurrent blocks" 2 w
          | S.Bounds _ ->
              Alcotest.fail "sibling cancel must not kill concurrent blocks");
          (* a cancelled parent, by contrast, reaches every forked task *)
          let dead = B.create () in
          B.cancel dead;
          let r = Engine.run_by_name ~seed:1 "bb-tw" dead (S.Graph g) in
          match r.S.outcome with
          | S.Exact _ -> Alcotest.fail "cancelled parent must not prove exactness"
          | S.Bounds _ -> ()))

(* ------------------------------------------------------------------ *)
(* Local search: the clock starts at run, not before                   *)
(* ------------------------------------------------------------------ *)

let test_local_search_clock_starts_at_run () =
  let config =
    {
      (Hd_ga.Local_search.default_config ~max_steps:200 ~seed:3 ()) with
      Hd_ga.Local_search.time_limit = Some 0.2;
    }
  in
  (* if the limit counted from config creation this sleep would exhaust
     it and the run would do no steps at all *)
  Unix.sleepf 0.25;
  let r = Hd_ga.Local_search.sa_tw config (Graph.grid 3 3) in
  check "steps ran after the sleep" true (r.Hd_ga.Local_search.steps > 0);
  check "elapsed excludes pre-run time" true
    (r.Hd_ga.Local_search.elapsed < 0.2)

(* ------------------------------------------------------------------ *)
(* Step: run-for-a-slice / park / resume                               *)
(* ------------------------------------------------------------------ *)

module Step = Hd_engine.Step

(* a budgeted computation that polls its ticker [polls] times; with a
   zero-length slice every actual clock read yields, so it needs
   several slices to finish *)
let polling_computation b polls =
  let tk = B.ticker b in
  let work = ref 0 in
  for _ = 1 to polls do
    incr work;
    B.check tk
  done;
  !work

let test_step_yields_then_finishes () =
  let b = B.create () in
  let step = Step.make b (fun () -> polling_computation b 50_000) in
  check "fresh step not finished" false (Step.finished step);
  (match Step.slice step ~seconds:0.0 with
  | Step.Yielded -> ()
  | Step.Done _ -> Alcotest.fail "a zero slice must park the computation");
  check "parked, not finished" false (Step.finished step);
  let v = Step.run_to_completion ~seconds:0.0 step in
  check_int "result survives parking" 50_000 v;
  check "finished" true (Step.finished step);
  check "resumed over several slices" true (Step.slices step >= 2);
  (match Step.slice step ~seconds:0.0 with
  | Step.Done v' -> check_int "done result cached" 50_000 v'
  | Step.Yielded -> Alcotest.fail "a finished step must return Done")

let test_step_credits_parked_time () =
  (* a sliced budget's deadline measures compute time: parking for
     longer than the whole time limit must not expire it *)
  let b = B.create ~time_limit:10.0 () in
  let step = Step.make b (fun () -> polling_computation b 50_000) in
  (match Step.slice step ~seconds:0.0 with
  | Step.Yielded -> ()
  | Step.Done _ -> Alcotest.fail "expected a yield");
  Unix.sleepf 0.05;
  let v = Step.run_to_completion ~seconds:0.0 step in
  check_int "finished despite the pause" 50_000 v;
  check "park time not billed" true (B.elapsed b < 0.04)

let test_step_cancel_while_parked () =
  (* cancelling a parked job must not drop its continuation: the next
     slice resumes it, the poll observes the cancel, and the
     computation returns what it has *)
  let b = B.create () in
  let step =
    Step.make b (fun () ->
        let tk = B.ticker b in
        let n = ref 0 in
        while (not (B.out_of_budget tk)) && !n < 1_000_000 do
          incr n
        done;
        !n)
  in
  (match Step.slice step ~seconds:0.0 with
  | Step.Yielded -> ()
  | Step.Done _ -> Alcotest.fail "expected a yield");
  B.cancel b;
  let n = Step.run_to_completion ~seconds:0.0 step in
  check "cancelled promptly after resume" true (n < 1_000_000)

let test_step_slices_whole_engine_run () =
  (* the integration the server relies on: Engine.run (with block
     splitting and sub-budgets) parks and resumes transparently,
     because every sub shares the root's slice deadline cell *)
  ensure_registry ();
  (* grids are heuristically closed for bb-tw (root lb = min-fill ub),
     which would finish without a single ticker poll; the GA polls on
     every fitness evaluation, so a state cap guarantees a long,
     poll-dense run that must park many times under zero-length
     slices *)
  let g = Graph.grid 4 4 in
  let b = B.create ~max_states:2000 () in
  let solver = Option.get (S.find "ga-tw") in
  let step = Step.make b (fun () -> Engine.run ~seed:1 solver b (S.Graph g)) in
  let r = Step.run_to_completion ~seconds:0.0 step in
  let lb, ub = S.bounds_of r.S.outcome in
  check "bounds sane" true (0 <= lb && lb <= ub && ub <= 15);
  check "solve actually got sliced" true (Step.slices step >= 2)

(* ------------------------------------------------------------------ *)
(* Timing-source invariant: the wall clock lives in lib/engine only    *)
(* ------------------------------------------------------------------ *)

let test_no_direct_clock_reads () =
  (* scan the source trees this test declares as deps; the needle is
     split so this file does not match itself *)
  let needle = "Unix.get" ^ "timeofday" in
  let contains hay =
    let nl = String.length needle and hl = String.length hay in
    let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
    go 0
  in
  let exempt path =
    (* the two timing authorities *)
    let has sub =
      let sl = String.length sub and pl = String.length path in
      let rec go i = i + sl <= pl && (String.sub path i sl = sub || go (i + 1)) in
      go 0
    in
    has "lib/engine/" || has "lib/obs/"
  in
  let offenders = ref [] in
  let rec walk dir =
    Array.iter
      (fun entry ->
        let path = Filename.concat dir entry in
        if Sys.is_directory path then walk path
        else if
          (Filename.check_suffix path ".ml" || Filename.check_suffix path ".mli")
          && not (exempt path)
        then begin
          let ic = open_in_bin path in
          let len = in_channel_length ic in
          let body = really_input_string ic len in
          close_in ic;
          if contains body then offenders := path :: !offenders
        end)
      (Sys.readdir dir)
  in
  List.iter (fun d -> if Sys.file_exists d then walk d)
    [ "../lib"; "../bin"; "../bench"; "../examples" ];
  Alcotest.(check (list string))
    "no wall-clock reads outside lib/engine and lib/obs" [] !offenders

let () =
  Alcotest.run "hd_engine"
    [
      ( "clock",
        [
          Alcotest.test_case "monotonic" `Quick test_clock_monotonic;
          Alcotest.test_case "time" `Quick test_clock_time;
        ] );
      ( "budget",
        [
          Alcotest.test_case "starts on run" `Quick test_budget_starts_on_run;
          Alcotest.test_case "sub rollover" `Quick test_budget_sub_rollover;
          Alcotest.test_case "remaining clamped at 0" `Quick
            test_budget_remaining_clamped;
          Alcotest.test_case "sub owns its cancel flag" `Quick
            test_budget_sub_own_cancel_flag;
          Alcotest.test_case "max states" `Quick test_ticker_max_states;
          Alcotest.test_case "expired deadline" `Quick
            test_ticker_expired_deadline;
          Alcotest.test_case "cancellation counter" `Quick
            test_ticker_cancellation_counter;
          Alcotest.test_case "spec equation" `Quick test_spec_equation;
        ] );
      ( "blocks",
        [
          Alcotest.test_case "path" `Quick test_split_path;
          Alcotest.test_case "cycle" `Quick test_split_cycle;
          Alcotest.test_case "two triangles" `Quick test_split_two_triangles;
          Alcotest.test_case "isolated vertices" `Quick test_split_isolated;
          Alcotest.test_case "vertex cover" `Quick test_split_covers_vertices;
        ] );
      ( "registry",
        [
          Alcotest.test_case "idempotent" `Quick test_registry_idempotent;
          Alcotest.test_case "unknown name" `Quick test_run_by_name_unknown;
          Alcotest.test_case "all solvers, tiny budget" `Slow
            test_all_solvers_sound_under_tiny_budget;
        ] );
      ( "engine",
        [
          Alcotest.test_case "chain tw + counters" `Slow test_blocks_chain_tw;
          QCheck_alcotest.to_alcotest prop_blocks_equal_mono_tw;
          QCheck_alcotest.to_alcotest prop_blocks_equal_mono_ghw;
          Alcotest.test_case "parallel blocks byte-identical" `Slow
            test_blocks_parallel_identical;
          Alcotest.test_case "cancel isolation under scheduler" `Quick
            test_blocks_cancel_under_runner;
        ] );
      ( "step",
        [
          Alcotest.test_case "yield, park, resume" `Quick
            test_step_yields_then_finishes;
          Alcotest.test_case "parked time credited" `Quick
            test_step_credits_parked_time;
          Alcotest.test_case "cancel while parked" `Quick
            test_step_cancel_while_parked;
          Alcotest.test_case "slices a whole Engine.run" `Quick
            test_step_slices_whole_engine_run;
        ] );
      ( "local search",
        [
          Alcotest.test_case "clock starts at run" `Slow
            test_local_search_clock_starts_at_run;
        ] );
      ( "hygiene",
        [
          Alcotest.test_case "no direct clock reads" `Quick
            test_no_direct_clock_reads;
        ] );
    ]
