module Bitset = Hd_graph.Bitset

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_list = Alcotest.(check (list int))

let test_empty () =
  let s = Bitset.create 10 in
  check_int "cardinal" 0 (Bitset.cardinal s);
  check "is_empty" true (Bitset.is_empty s);
  check "mem" false (Bitset.mem s 3);
  check_list "elements" [] (Bitset.elements s)

let test_add_remove () =
  let s = Bitset.create 100 in
  Bitset.add s 0;
  Bitset.add s 63;
  Bitset.add s 64;
  Bitset.add s 99;
  check_int "cardinal" 4 (Bitset.cardinal s);
  check_list "elements" [ 0; 63; 64; 99 ] (Bitset.elements s);
  Bitset.remove s 63;
  check "removed" false (Bitset.mem s 63);
  check "kept" true (Bitset.mem s 64);
  check_int "cardinal after remove" 3 (Bitset.cardinal s)

let test_add_idempotent () =
  let s = Bitset.create 5 in
  Bitset.add s 2;
  Bitset.add s 2;
  check_int "cardinal" 1 (Bitset.cardinal s)

let test_full () =
  let s = Bitset.full 70 in
  check_int "cardinal" 70 (Bitset.cardinal s);
  check "mem 69" true (Bitset.mem s 69)

let test_set_ops () =
  let a = Bitset.of_list 10 [ 1; 2; 3 ] in
  let b = Bitset.of_list 10 [ 2; 3; 4 ] in
  check_int "inter_cardinal" 2 (Bitset.inter_cardinal a b);
  let u = Bitset.copy a in
  Bitset.union_into ~src:b ~dst:u;
  check_list "union" [ 1; 2; 3; 4 ] (Bitset.elements u);
  let d = Bitset.copy a in
  Bitset.diff_into ~src:b ~dst:d;
  check_list "diff" [ 1 ] (Bitset.elements d);
  let i = Bitset.copy a in
  Bitset.inter_into ~src:b ~dst:i;
  check_list "inter" [ 2; 3 ] (Bitset.elements i)

let test_subset_equal () =
  let a = Bitset.of_list 10 [ 1; 2 ] in
  let b = Bitset.of_list 10 [ 1; 2; 3 ] in
  check "subset" true (Bitset.subset a b);
  check "not subset" false (Bitset.subset b a);
  check "not equal" false (Bitset.equal a b);
  check "equal copy" true (Bitset.equal a (Bitset.copy a))

let test_choose_fold () =
  let a = Bitset.of_list 10 [ 7; 3; 9 ] in
  check_int "choose = min" 3 (Bitset.choose a);
  check_int "fold sum" 19 (Bitset.fold ( + ) a 0);
  check "exists" true (Bitset.exists (fun x -> x = 9) a);
  check "for_all" true (Bitset.for_all (fun x -> x >= 3) a);
  Alcotest.check_raises "choose empty" Not_found (fun () ->
      ignore (Bitset.choose (Bitset.create 4)))

let test_blit () =
  let a = Bitset.of_list 10 [ 1; 5 ] in
  let b = Bitset.of_list 10 [ 2 ] in
  Bitset.blit ~src:a ~dst:b;
  check "blit copies" true (Bitset.equal a b)

(* properties *)

let int_list_gen n = QCheck.Gen.(list_size (0 -- 30) (0 -- (n - 1)))

let prop_elements_sorted_unique =
  QCheck.Test.make ~count:200 ~name:"elements sorted, unique, match cardinal"
    QCheck.(make (int_list_gen 64))
    (fun xs ->
      let s = Bitset.of_list 64 xs in
      let es = Bitset.elements s in
      es = List.sort_uniq compare xs && List.length es = Bitset.cardinal s)

let prop_mem_matches_list =
  QCheck.Test.make ~count:200 ~name:"mem agrees with membership"
    QCheck.(pair (make (int_list_gen 64)) (make QCheck.Gen.(0 -- 63)))
    (fun (xs, probe) ->
      let s = Bitset.of_list 64 xs in
      Bitset.mem s probe = List.mem probe xs)

(* iter is the kernel under set-cover and eval; after the ctz rewrite
   it must agree exactly with elements and mem, including bits at word
   boundaries (0, 62, 63, 64, 125, 126) *)
let prop_iter_agrees =
  QCheck.Test.make ~count:300 ~name:"iter = elements = mem (ctz correctness)"
    QCheck.(make QCheck.Gen.(list_size (0 -- 40) (0 -- 199)))
    (fun xs ->
      let n = 200 in
      let s = Bitset.of_list n xs in
      let via_iter = ref [] in
      Bitset.iter (fun i -> via_iter := i :: !via_iter) s;
      let via_iter = List.rev !via_iter in
      via_iter = Bitset.elements s
      && List.for_all (fun i -> Bitset.mem s i) via_iter
      && List.for_all
           (fun i -> List.mem i via_iter = Bitset.mem s i)
           (List.init n Fun.id))

let test_iter_word_boundaries () =
  (* every single-bit set over a 3-word range iterates exactly itself *)
  let n = 190 in
  for i = 0 to n - 1 do
    let s = Bitset.of_list n [ i ] in
    let got = ref (-1) and count = ref 0 in
    Bitset.iter
      (fun j ->
        got := j;
        incr count)
      s;
    if !count <> 1 || !got <> i then
      Alcotest.failf "iter of singleton {%d} yielded %d items, last %d" i
        !count !got
  done

(* The offset basis is the standard 64-bit FNV-1a basis truncated to
   63 bits: bit 63 dropped, bit 62 in the native sign bit.  The final
   non-negativity mask hides bit 62 of the accumulator, so the basis
   fix is observable here only through the exported constant — assert
   both the constant and that the collision rate over a few thousand
   random small sets stays at hash-quality levels. *)
let test_fnv_basis_and_collisions () =
  check "basis keeps the truncated high bit" true
    (Bitset.fnv_offset_basis = 0xbf29ce484222325 lor (1 lsl 62));
  check "basis low bits match the standard constant" true
    (Bitset.fnv_offset_basis land ((1 lsl 60) - 1) = 0xbf29ce484222325);
  let rng = Random.State.make [| 0x5eed |] in
  let n = 160 in
  let seen = Hashtbl.create 4096 and hashes = Hashtbl.create 4096 in
  let distinct = ref 0 and collisions = ref 0 in
  for _ = 1 to 4000 do
    let size = 1 + Random.State.int rng 12 in
    let s = Bitset.create n in
    for _ = 1 to size do
      Bitset.add s (Random.State.int rng n)
    done;
    let key = Bitset.elements s in
    if not (Hashtbl.mem seen key) then begin
      Hashtbl.add seen key ();
      incr distinct;
      let h = Bitset.fnv_hash s in
      if Hashtbl.mem hashes h then incr collisions
      else Hashtbl.add hashes h ()
    end
  done;
  check "enough distinct sets sampled" true (!distinct > 3000);
  (* 63-bit hashes over a few thousand keys: expected collisions ~ 0 *)
  if !collisions > 2 then
    Alcotest.failf "fnv_hash collision rate too high: %d / %d" !collisions
      !distinct

let prop_inter_cardinal =
  QCheck.Test.make ~count:200 ~name:"inter_cardinal = |a ∩ b|"
    QCheck.(pair (make (int_list_gen 64)) (make (int_list_gen 64)))
    (fun (xs, ys) ->
      let a = Bitset.of_list 64 xs and b = Bitset.of_list 64 ys in
      let inter =
        List.sort_uniq compare (List.filter (fun x -> List.mem x ys) xs)
      in
      Bitset.inter_cardinal a b = List.length inter)

let () =
  Alcotest.run "bitset"
    [
      ( "unit",
        [
          Alcotest.test_case "empty" `Quick test_empty;
          Alcotest.test_case "add/remove across words" `Quick test_add_remove;
          Alcotest.test_case "add idempotent" `Quick test_add_idempotent;
          Alcotest.test_case "full" `Quick test_full;
          Alcotest.test_case "union/diff/inter" `Quick test_set_ops;
          Alcotest.test_case "subset/equal" `Quick test_subset_equal;
          Alcotest.test_case "choose/fold/exists" `Quick test_choose_fold;
          Alcotest.test_case "blit" `Quick test_blit;
          Alcotest.test_case "iter word boundaries" `Quick
            test_iter_word_boundaries;
          Alcotest.test_case "fnv basis and collision rate" `Quick
            test_fnv_basis_and_collisions;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_elements_sorted_unique;
            prop_mem_matches_list;
            prop_iter_agrees;
            prop_inter_cardinal;
          ] );
    ]
