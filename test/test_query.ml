module Cq = Hd_query.Cq
module Db = Hd_query.Db
module Intern = Hd_query.Intern
module Qrelation = Hd_query.Qrelation
module Y = Hd_query.Yannakakis
module Bf = Hd_query.Brute_force
module Obs = Hd_obs.Obs

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_answers = Alcotest.(check (list (array string)))
let sorted l = List.sort compare l

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec at i =
    if i + nn > nh then false
    else String.sub haystack i nn = needle || at (i + 1)
  in
  at 0

(* ------------------------------------------------------------------ *)
(* Helpers                                                             *)
(* ------------------------------------------------------------------ *)

let db_of_edges edges =
  let db = Db.create () in
  Db.add db ~name:"e" (List.map (fun (a, b) -> [| a; b |]) edges);
  db

let triangle_q = Cq.parse_string "ans(X,Y,Z) :- e(X,Y), e(Y,Z), e(Z,X)."
let two_hop_q = Cq.parse_string "ans(X,Z) :- e(X,Y), e(Y,Z)."

(* a graph whose only triangles are a->b->c->a, plus a long pendant
   chain of non-triangle edges *)
let triangle_plus_chain k =
  let chain =
    List.init k (fun i ->
        ( (if i = 0 then "c" else Printf.sprintf "p%d" (i - 1)),
          Printf.sprintf "p%d" i ))
  in
  [ ("a", "b"); ("b", "c"); ("c", "a") ] @ chain

let modes_agree ?(methods = [ Y.Auto; Y.Min_fill ]) db q =
  let expected = sorted (Bf.answers db q) in
  let expected_count = Bf.count db q in
  let expected_bool = Bf.boolean db q in
  List.iter
    (fun method_ ->
      let a = Y.run ~method_ ~mode:Y.Answers db q in
      check_answers "answers" expected (sorted a.Y.answers);
      check_int "answers count field" expected_count a.Y.count;
      let c = Y.run ~method_ ~mode:Y.Count db q in
      check_int "count" expected_count c.Y.count;
      let b = Y.run ~method_ ~mode:Y.Boolean db q in
      check "boolean" expected_bool b.Y.nonempty)
    methods

(* ------------------------------------------------------------------ *)
(* Parser                                                              *)
(* ------------------------------------------------------------------ *)

let test_parse_basics () =
  let q = Cq.parse_string "ans(X,Y) :- r(X,Z), s(Z,Y)." in
  Alcotest.(check string) "head pred" "ans" q.Cq.head_pred;
  Alcotest.(check (array string)) "head" [| "X"; "Y" |] q.Cq.head;
  check_int "atoms" 2 (List.length q.Cq.body);
  Alcotest.(check (array string)) "vars" [| "X"; "Z"; "Y" |] (Cq.variables q);
  (* constants, quoted constants, multi-line atoms, comments *)
  let q =
    Cq.parse_string
      "ans(X) :-\n  % comment\n  e(a, X),\n  e(X,\n    \"b c\")."
  in
  check_int "atoms" 2 (List.length q.Cq.body);
  (match (List.hd q.Cq.body).Cq.args.(0) with
  | Cq.Const "a" -> ()
  | _ -> Alcotest.fail "expected constant a");
  (match (List.nth q.Cq.body 1).Cq.args.(1) with
  | Cq.Const "b c" -> ()
  | _ -> Alcotest.fail "expected quoted constant");
  (* boolean-style empty head *)
  let q = Cq.parse_string "ok() :- e(X,Y)." in
  Alcotest.(check (array string)) "empty head" [||] q.Cq.head

let expect_parse_error ?(substring = "") text =
  match Cq.parse_string text with
  | _ -> Alcotest.failf "expected a parse failure for %S" text
  | exception Failure msg ->
      if substring <> "" then
        check
          (Printf.sprintf "error %S mentions %S" msg substring)
          true
          (contains msg substring)

let test_parse_errors () =
  expect_parse_error ~substring:"unsafe" "ans(X,W) :- e(X,Y).";
  expect_parse_error ~substring:"line 2" "ans(X) :-\n e(X,Y";
  expect_parse_error ~substring:"must be a variable" "ans(a) :- e(a,Y).";
  expect_parse_error ":- e(X,Y).";
  expect_parse_error "ans(X) e(X,Y)."

let test_hypergraph_extraction () =
  let h = Cq.hypergraph triangle_q in
  check_int "vertices" 3 (Hd_hypergraph.Hypergraph.n_vertices h);
  check_int "edges" 3 (Hd_hypergraph.Hypergraph.n_edges h);
  check "cyclic" false (Hd_hypergraph.Acyclicity.is_acyclic h);
  let h = Cq.hypergraph two_hop_q in
  check "acyclic" true (Hd_hypergraph.Acyclicity.is_acyclic h);
  (* ground atoms contribute no hyperedge *)
  let q = Cq.parse_string "ans(X) :- e(a,b), e(a,X)." in
  check_int "one edge" 1
    (Hd_hypergraph.Hypergraph.n_edges (Cq.hypergraph q))

(* ------------------------------------------------------------------ *)
(* Qrelation                                                           *)
(* ------------------------------------------------------------------ *)

let qr scope rows = Qrelation.make ~scope rows

let test_qrelation_basics () =
  let r = qr [| 0; 1 |] [ [| 1; 2 |]; [| 1; 3 |]; [| 1; 2 |] ] in
  check_int "dedup" 2 (Qrelation.cardinality r);
  check "mem" true (Qrelation.mem r [| 1; 3 |]);
  check "not mem" false (Qrelation.mem r [| 3; 1 |]);
  check_int "get" 3 (Qrelation.get r 1 1);
  check_int "position" 1 (Qrelation.position r 1);
  (* index: both rows share the key on column 0 *)
  let idx = Qrelation.index_on r [| 0 |] in
  check_int "bucket" 2 (List.length (Hashtbl.find idx [| 1 |]));
  check_int "matching" 2 (List.length (Qrelation.matching r ~on:[| 0 |] [| 1 |]))

let test_qrelation_join_semijoin () =
  let a = qr [| 0; 1 |] [ [| 1; 2 |]; [| 1; 3 |]; [| 2; 3 |] ] in
  let b = qr [| 1; 2 |] [ [| 2; 5 |]; [| 3; 6 |] ] in
  let j = Qrelation.join a b in
  Alcotest.(check (array int)) "join scope" [| 0; 1; 2 |] (Qrelation.scope j);
  check_int "join size" 3 (Qrelation.cardinality j);
  check "join tuple" true (Qrelation.mem j [| 1; 2; 5 |]);
  (* disjoint scopes: cartesian product *)
  let c = qr [| 7 |] [ [| 9 |]; [| 8 |] ] in
  check_int "cartesian" 6 (Qrelation.cardinality (Qrelation.join a c));
  let s = Qrelation.semijoin a (qr [| 1; 2 |] [ [| 2; 5 |] ]) in
  check_int "semijoin filters" 1 (Qrelation.cardinality s);
  check "kept" true (Qrelation.mem s [| 1; 2 |]);
  (* semijoin against an empty disjoint relation empties *)
  check "empty disjoint" true
    (Qrelation.is_empty (Qrelation.semijoin a (qr [| 7 |] [])));
  check_int "nonempty disjoint keeps all" 3
    (Qrelation.cardinality (Qrelation.semijoin a c))

let test_qrelation_project_select () =
  let a = qr [| 0; 1 |] [ [| 1; 2 |]; [| 1; 3 |]; [| 2; 3 |] ] in
  check_int "project dedups" 2
    (Qrelation.cardinality (Qrelation.project a [| 0 |]));
  check_int "select" 2
    (Qrelation.cardinality (Qrelation.select_eq a ~attr:0 ~value:1));
  check "equal" true
    (Qrelation.equal a (qr [| 0; 1 |] [ [| 2; 3 |]; [| 1; 3 |]; [| 1; 2 |] ]))

(* the csp Relation and Qrelation implement the same algebra *)
let prop_qrelation_matches_relation =
  QCheck.Test.make ~count:200 ~name:"Qrelation join/semijoin = Relation"
    QCheck.(make QCheck.Gen.(pair int int))
    (fun (s1, s2) ->
      let rng = Random.State.make [| s1; s2 |] in
      let mk scope =
        List.init
          (Random.State.int rng 8)
          (fun _ ->
            Array.init (Array.length scope) (fun _ -> Random.State.int rng 3))
      in
      let sa = [| 0; 1 |] and sb = [| 1; 2 |] in
      let ra = mk sa and rb = mk sb in
      let q_join = Qrelation.join (qr sa ra) (qr sb rb) in
      let r_join =
        Hd_csp.Relation.join
          (Hd_csp.Relation.make ~scope:sa ra)
          (Hd_csp.Relation.make ~scope:sb rb)
      in
      let q_semi = Qrelation.semijoin (qr sa ra) (qr sb rb) in
      let r_semi =
        Hd_csp.Relation.semijoin
          (Hd_csp.Relation.make ~scope:sa ra)
          (Hd_csp.Relation.make ~scope:sb rb)
      in
      sorted (Qrelation.rows q_join)
      = sorted (Hd_csp.Relation.tuples r_join)
      && sorted (Qrelation.rows q_semi)
         = sorted (Hd_csp.Relation.tuples r_semi))

(* ------------------------------------------------------------------ *)
(* Db loading                                                          *)
(* ------------------------------------------------------------------ *)

let with_temp_dir f =
  let dir =
    Filename.temp_file "hd_query_test" ""
  in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  Fun.protect
    ~finally:(fun () ->
      Array.iter
        (fun entry -> Sys.remove (Filename.concat dir entry))
        (Sys.readdir dir);
      Unix.rmdir dir)
    (fun () -> f dir)

let write_file path text =
  let oc = open_out path in
  output_string oc text;
  close_out oc

let test_db_load () =
  with_temp_dir @@ fun dir ->
  write_file (Filename.concat dir "e.csv")
    "# comment\na,b\nb,c\n\nc,a\n";
  write_file (Filename.concat dir "color.tsv") "a\tred\nb\tblue\n";
  let db = Db.create () in
  Db.load_dir db dir;
  Alcotest.(check (list string)) "relations" [ "color"; "e" ]
    (Db.relation_names db);
  (match Db.find db "e" with
  | Some r -> check_int "e rows" 3 (Qrelation.cardinality r)
  | None -> Alcotest.fail "missing e");
  (match Db.find db "color" with
  | Some r -> check_int "color rows" 2 (Qrelation.cardinality r)
  | None -> Alcotest.fail "missing color");
  (* a query joining both loaded relations *)
  let q = Cq.parse_string "ans(X,C) :- e(X,Y), color(Y,C)." in
  let r = Y.run ~mode:Y.Answers db q in
  check_answers "join across files"
    (sorted [ [| "c"; "red" |]; [| "a"; "blue" |] ])
    (sorted r.Y.answers)

let test_db_load_errors () =
  with_temp_dir @@ fun dir ->
  write_file (Filename.concat dir "bad.csv") "a,b\nc\n";
  let db = Db.create () in
  (match Db.load_dir db dir with
  | () -> Alcotest.fail "expected ragged-row failure"
  | exception Failure msg -> check "mentions line" true (contains msg "line 2"));
  (* unknown relation in a query *)
  let db = db_of_edges [ ("a", "b") ] in
  check "unknown relation" true
    (match Y.run ~mode:Y.Boolean db (Cq.parse_string "ans(X) :- f(X,Y).") with
    | _ -> false
    | exception Failure _ -> true)

(* ------------------------------------------------------------------ *)
(* Engine vs brute force                                               *)
(* ------------------------------------------------------------------ *)

let test_triangle_all_modes () =
  let db =
    db_of_edges
      [
        ("a", "b"); ("b", "c"); ("c", "a");
        ("b", "d"); ("d", "e"); ("e", "b");
        ("c", "d"); ("d", "a");
      ]
  in
  modes_agree ~methods:[ Y.Auto; Y.Min_fill; Y.Bb_ghw ] db triangle_q;
  (* the plan really is cyclic: a GHD of width >= 2 *)
  let r = Y.run ~mode:Y.Answers db triangle_q in
  check "not acyclic" false r.Y.stats.Y.acyclic;
  check "width >= 2" true (r.Y.stats.Y.width >= 2)

let test_four_cycle_all_modes () =
  let q = Cq.parse_string "ans(W,X,Y,Z) :- e(W,X), e(X,Y), e(Y,Z), e(Z,W)." in
  let db =
    db_of_edges
      [
        ("a", "b"); ("b", "c"); ("c", "d"); ("d", "a");
        ("b", "a"); ("c", "b"); ("a", "c"); ("d", "b");
      ]
  in
  modes_agree db q

let test_acyclic_query () =
  let db = db_of_edges (triangle_plus_chain 5) in
  modes_agree db two_hop_q;
  let r = Y.run ~mode:Y.Count db two_hop_q in
  check "acyclic plan" true r.Y.stats.Y.acyclic;
  check_int "acyclic width" 1 r.Y.stats.Y.width

let test_projection_and_constants () =
  let db = db_of_edges (triangle_plus_chain 4) in
  List.iter
    (fun text -> modes_agree db (Cq.parse_string text))
    [
      "ans(X) :- e(X,Y), e(Y,Z).";
      "ans(X) :- e(a,X).";
      "ans(X) :- e(X,X).";
      "ans(X,Y) :- e(X,Y), e(Y,X).";
      "ok() :- e(a,b), e(b,c).";
      "ans(X) :- e(zzz,X).";
    ]

let test_empty_results () =
  let db = db_of_edges [ ("a", "b"); ("b", "c") ] in
  let r = Y.run ~mode:Y.Answers db triangle_q in
  check "no triangles" false r.Y.nonempty;
  check_answers "empty" [] r.Y.answers;
  check_int "count 0" 0 (Y.run ~mode:Y.Count db triangle_q).Y.count;
  check "boolean false" false (Y.run ~mode:Y.Boolean db triangle_q).Y.nonempty

(* random instances, several query shapes, every mode, both the
   acyclic-aware and the forced-GHD planner *)
let prop_matches_brute_force =
  let queries =
    [
      triangle_q;
      two_hop_q;
      Cq.parse_string "ans(X,Y,Z) :- e(X,Y), e(Y,Z), e(Z,X), e(X,Z).";
      Cq.parse_string "ans(X) :- e(X,Y), e(Y,X).";
      Cq.parse_string
        "ans(W,Z) :- e(W,X), e(X,Y), e(Y,Z), e(Z,W), e(W,Y).";
    ]
  in
  QCheck.Test.make ~count:60 ~name:"hd_query = brute force on random graphs"
    QCheck.(make QCheck.Gen.(pair (2 -- 6) int))
    (fun (n, seed) ->
      let rng = Random.State.make [| n; seed |] in
      let m = 1 + Random.State.int rng 14 in
      let edges =
        List.init m (fun _ ->
            ( Printf.sprintf "v%d" (Random.State.int rng n),
              Printf.sprintf "v%d" (Random.State.int rng n) ))
      in
      let db = db_of_edges edges in
      List.for_all
        (fun q ->
          let expected = sorted (Bf.answers db q) in
          List.for_all
            (fun method_ ->
              sorted (Y.run ~method_ ~mode:Y.Answers db q).Y.answers = expected
              && (Y.run ~method_ ~mode:Y.Count db q).Y.count
                 = List.length expected
              && (Y.run ~method_ ~mode:Y.Boolean db q).Y.nonempty
                 = (expected <> []))
            [ Y.Auto; Y.Min_fill ])
        queries)

(* two-relation query from the issue statement *)
let test_two_relations () =
  let db = Db.create () in
  Db.add db ~name:"r"
    [ [| "1"; "2" |]; [| "1"; "3" |]; [| "2"; "3" |]; [| "4"; "4" |] ];
  Db.add db ~name:"s" [ [| "2"; "9" |]; [| "3"; "9" |]; [| "4"; "7" |] ];
  modes_agree db (Cq.parse_string "ans(X,Y) :- r(X,Z), s(Z,Y).")

(* ------------------------------------------------------------------ *)
(* Columnar kernel (Colexec)                                           *)
(* ------------------------------------------------------------------ *)

module Cx = Hd_query.Colexec

(* decode a selection vector into the selected rows, for comparison
   against the row-engine algebra *)
let rows_of_sel r sel =
  Array.to_list
    (Array.map
       (fun i ->
         Array.init (Array.length (Qrelation.scope r)) (Qrelation.get r i))
       sel)

let test_colexec_semijoin () =
  let a = qr [| 0; 1 |] [ [| 1; 2 |]; [| 1; 3 |]; [| 2; 3 |] ] in
  let b = qr [| 1; 2 |] [ [| 2; 5 |]; [| 3; 6 |] ] in
  (* shared attribute 1 = a's column 1 = b's column 0: the selection
     must pick exactly the rows the row-engine semijoin keeps *)
  let sel =
    Cx.semijoin
      ~probe:(a, Cx.all_rows a, [| 1 |])
      ~build:(b, Cx.all_rows b, [| 0 |])
      ()
  in
  check "matches row semijoin" true
    (sorted (rows_of_sel a sel)
    = sorted (Qrelation.rows (Qrelation.semijoin a b)));
  (* the base relation is untouched: selection vectors only *)
  check_int "base unchanged" 3 (Qrelation.cardinality a);
  (* restricting the build selection restricts the survivors *)
  let bsel = Cx.semijoin ~probe:(b, Cx.all_rows b, [| 0 |])
               ~build:(qr [| 1 |] [ [| 2 |] ], [| 0 |], [| 0 |]) () in
  let sel2 =
    Cx.semijoin ~probe:(a, Cx.all_rows a, [| 1 |]) ~build:(b, bsel, [| 0 |]) ()
  in
  check "restricted build" true
    (sorted (rows_of_sel a sel2) = sorted [ [| 1; 2 |] ])

let test_colexec_edge_cases () =
  let a = qr [| 0; 1 |] [ [| 1; 2 |]; [| 2; 3 |] ] in
  (* empty probe relation *)
  let e = qr [| 0; 1 |] [] in
  check_int "empty probe" 0
    (Array.length
       (Cx.semijoin ~probe:(e, Cx.all_rows e, [| 1 |])
          ~build:(a, Cx.all_rows a, [| 0 |]) ()));
  (* empty build side drops everything *)
  check_int "empty build" 0
    (Array.length
       (Cx.semijoin ~probe:(a, Cx.all_rows a, [| 1 |])
          ~build:(e, Cx.all_rows e, [| 0 |]) ()));
  (* disjoint scopes: the key is empty -- a nonempty build keeps all
     rows, an empty selection keeps none (cartesian semantics) *)
  let c = qr [| 7 |] [ [| 9 |]; [| 8 |] ] in
  check_int "disjoint nonempty keeps all" 2
    (Array.length
       (Cx.semijoin ~probe:(a, Cx.all_rows a, [||])
          ~build:(c, Cx.all_rows c, [||]) ()));
  check_int "disjoint empty selection drops all" 0
    (Array.length
       (Cx.semijoin ~probe:(a, Cx.all_rows a, [||]) ~build:(c, [||], [||]) ()));
  (* all-duplicate keys on both sides: one bucket holds everything *)
  let dup rows = qr [| 0; 1 |] (List.init rows (fun i -> [| 7; i |])) in
  let d1 = dup 40 and d2 = dup 17 in
  check_int "all-duplicate keys" 40
    (Array.length
       (Cx.semijoin
          ~probe:(d1, Cx.all_rows d1, [| 0 |])
          ~build:(d2, Cx.all_rows d2, [| 0 |]) ()));
  (* single-row relations (directory at its minimum size) *)
  let s1 = qr [| 0 |] [ [| 5 |] ] in
  check_int "singleton hit" 1
    (Array.length
       (Cx.semijoin ~probe:(s1, Cx.all_rows s1, [| 0 |])
          ~build:(s1, Cx.all_rows s1, [| 0 |]) ()))

let test_colexec_join_project () =
  let a = qr [| 0; 1 |] [ [| 1; 2 |]; [| 1; 3 |]; [| 2; 3 |] ] in
  let b = qr [| 1; 2 |] [ [| 2; 5 |]; [| 3; 6 |] ] in
  let j = Cx.join_project [ a; b ] ~scope:[| 0; 1; 2 |] in
  check "join matches rows engine" true
    (sorted (Qrelation.rows j) = sorted (Qrelation.rows (Qrelation.join a b)));
  (* projection dedups *)
  let p = Cx.join_project [ a; b ] ~scope:[| 0 |] in
  check "project dedups" true
    (sorted (Qrelation.rows p) = sorted [ [| 1 |]; [| 2 |] ]);
  (* disjoint scopes: cartesian product *)
  let c = qr [| 7 |] [ [| 9 |]; [| 8 |] ] in
  check_int "cartesian" 6
    (Qrelation.cardinality (Cx.join_project [ a; c ] ~scope:[| 0; 1; 7 |]));
  (* empty operand *)
  check "empty operand" true
    (Qrelation.is_empty
       (Cx.join_project [ a; qr [| 1; 2 |] [] ] ~scope:[| 0; 1 |]));
  check "empty list rejected" true
    (match Cx.join_project [] ~scope:[| 0 |] with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_colexec_index_keysum () =
  let r = qr [| 0; 1 |] [ [| 1; 2 |]; [| 1; 3 |]; [| 2; 3 |]; [| 1; 4 |] ] in
  let sel = Cx.all_rows r in
  let idx = Cx.Index.build r ~pos:[| 0 |] ~sel in
  let hits key =
    let acc = ref [] in
    Cx.Index.iter idx key (fun row -> acc := row :: !acc);
    List.length !acc
  in
  check_int "key 1" 3 (hits [| 1 |]);
  check_int "key 2" 1 (hits [| 2 |]);
  check_int "missing key" 0 (hits [| 99 |]);
  (* Keysum: weights accumulate per distinct key *)
  let ks =
    Cx.Keysum.build r ~pos:[| 0 |] ~sel
      ~weights:(Array.init (Array.length sel) (fun s -> s + 1))
  in
  (* selection slots 0,1,3 carry key 1 with weights 1,2,4 *)
  check_int "keysum 1" 7 (Cx.Keysum.find ks [| 1 |]);
  check_int "keysum 2" 3 (Cx.Keysum.find ks [| 2 |]);
  check_int "keysum missing" 0 (Cx.Keysum.find ks [| 42 |])

(* ISSUE acceptance: the partitioned-parallel columnar passes are
   byte-identical to the sequential ones — chunk boundaries depend only
   on the probe count and the grain, outputs concatenate in chunk
   order.  The grain is forced tiny so even these small relations run
   multi-chunk. *)
let test_colexec_parallel_identical () =
  Fun.protect
    ~finally:(fun () -> Cx.set_grain Cx.default_grain)
    (fun () ->
      Cx.set_grain 8;
      Hd_parallel.Scheduler.with_scheduler ~workers:3 (fun s ->
          let rng = Random.State.make [| 11 |] in
          let rows n k =
            List.init n (fun _ ->
                Array.init k (fun _ -> Random.State.int rng 40))
          in
          let a = qr [| 0; 1 |] (rows 300 2) in
          let b = qr [| 1; 2 |] (rows 200 2) in
          let seq_sel =
            Cx.semijoin
              ~probe:(a, Cx.all_rows a, [| 1 |])
              ~build:(b, Cx.all_rows b, [| 0 |])
              ()
          in
          let par_sel =
            Cx.semijoin ~par:s
              ~probe:(a, Cx.all_rows a, [| 1 |])
              ~build:(b, Cx.all_rows b, [| 0 |])
              ()
          in
          check "parallel semijoin byte-identical" true (seq_sel = par_sel);
          let seq_j = Cx.join_project [ a; b ] ~scope:[| 0; 2 |] in
          let par_j = Cx.join_project ~par:s [ a; b ] ~scope:[| 0; 2 |] in
          check "parallel join-project byte-identical" true
            (Qrelation.rows seq_j = Qrelation.rows par_j);
          (* end to end through Yannakakis: same answers, same counts,
             same reduction stats *)
          let db = db_of_edges (triangle_plus_chain 60) in
          List.iter
            (fun q ->
              let seq_r = Y.run ~mode:Y.Answers db q in
              let par_r = Y.run ~par:s ~mode:Y.Answers db q in
              check_answers "parallel answers identical"
                (sorted seq_r.Y.answers) (sorted par_r.Y.answers);
              check_int "parallel count identical" seq_r.Y.count par_r.Y.count;
              check "parallel stats identical" true
                (seq_r.Y.stats = par_r.Y.stats))
            [ triangle_q; two_hop_q ]))

(* columnar and row engines agree with brute force -- same answer
   multiset, same query.answers counter -- on random cyclic and
   acyclic query shapes *)
let prop_columnar_matches_rows =
  let queries =
    [
      (* cyclic *)
      triangle_q;
      Cq.parse_string "ans(W,X,Y,Z) :- e(W,X), e(X,Y), e(Y,Z), e(Z,W).";
      Cq.parse_string "ans(X,Y,Z) :- e(X,Y), e(Y,Z), e(Z,X), e(X,Z).";
      (* acyclic *)
      two_hop_q;
      Cq.parse_string "ans(X,Z) :- e(X,Y), e(Z,Y).";
      Cq.parse_string "ans(X) :- e(a,X).";
    ]
  in
  QCheck.Test.make ~count:40 ~name:"columnar = rows = brute force"
    QCheck.(make QCheck.Gen.(pair (2 -- 6) int))
    (fun (n, seed) ->
      let rng = Random.State.make [| n; seed; 7 |] in
      let m = 1 + Random.State.int rng 14 in
      let edges =
        List.init m (fun _ ->
            ( Printf.sprintf "v%d" (Random.State.int rng n),
              Printf.sprintf "v%d" (Random.State.int rng n) ))
      in
      let db = db_of_edges edges in
      let value name = Obs.Counter.value (Obs.Counter.make name) in
      List.for_all
        (fun q ->
          let expected = sorted (Bf.answers db q) in
          Obs.enable ();
          Obs.reset ();
          let col = Y.run ~engine:Y.Columnar ~mode:Y.Answers db q in
          let col_ctr = value "query.answers" in
          Obs.reset ();
          let row = Y.run ~engine:Y.Rows ~mode:Y.Answers db q in
          let row_ctr = value "query.answers" in
          Obs.disable ();
          sorted col.Y.answers = expected
          && sorted row.Y.answers = expected
          && col.Y.count = List.length expected
          && row.Y.count = col.Y.count
          && col_ctr = row_ctr
          && (Y.run ~engine:Y.Columnar ~mode:Y.Count db q).Y.count
             = (Y.run ~engine:Y.Rows ~mode:Y.Count db q).Y.count
          && (Y.run ~engine:Y.Columnar ~mode:Y.Boolean db q).Y.nonempty
             = (expected <> []))
        queries)

(* ------------------------------------------------------------------ *)
(* Multi-rule parsing (the --batch / bulk input format)                *)
(* ------------------------------------------------------------------ *)

let test_parse_multi () =
  let qs =
    Cq.parse_multi_string
      "t(X,Y,Z) :- e(X,Y), e(Y,Z), e(Z,X).\n\
       % a comment between rules\n\
       h(X,Z) :- e(X,Y), e(Y,Z).\n\
       ok() :- e(a,b)."
  in
  check_int "three rules" 3 (List.length qs);
  Alcotest.(check (list string)) "heads" [ "t"; "h"; "ok" ]
    (List.map (fun q -> q.Cq.head_pred) qs);
  check_int "empty input" 0 (List.length (Cq.parse_multi_string ""));
  check_int "only comments" 0
    (List.length (Cq.parse_multi_string "% nothing\n% here\n"));
  (* errors in a later rule are still reported with a position *)
  (match Cq.parse_multi_string "a(X) :- e(X,Y).\nb(X) :- e(X" with
  | _ -> Alcotest.fail "expected a parse failure"
  | exception Failure msg -> check "position" true (contains msg "line 2"));
  (* single-rule parse still rejects trailing input *)
  (match Cq.parse_string "a(X) :- e(X,Y). b(X) :- e(X,Y)." with
  | _ -> Alcotest.fail "expected trailing-input failure"
  | exception Failure msg -> check "trailing" true (contains msg "trailing"))

(* ------------------------------------------------------------------ *)
(* Db atom-relation cache                                              *)
(* ------------------------------------------------------------------ *)

let test_atom_cache () =
  let db = db_of_edges (triangle_plus_chain 3) in
  let value name = Obs.Counter.value (Obs.Counter.make name) in
  Obs.enable ();
  Obs.reset ();
  let r1 = Y.run ~mode:Y.Count db triangle_q in
  let misses1 = value "query.atom_cache_misses" in
  let hits1 = value "query.atom_cache_hits" in
  (* the same query again: every atom relation comes from the cache *)
  let r2 = Y.run ~mode:Y.Count db triangle_q in
  let misses2 = value "query.atom_cache_misses" in
  let hits2 = value "query.atom_cache_hits" in
  check_int "same count" r1.Y.count r2.Y.count;
  check "first run misses" true (misses1 > 0);
  check_int "second run misses nothing" misses1 misses2;
  check "second run hits" true (hits2 > hits1);
  (* mutating the db flushes the cache *)
  Db.add db ~name:"e" [ [| "x"; "y" |] ];
  let (_ : Y.result) = Y.run ~mode:Y.Count db triangle_q in
  let misses3 = value "query.atom_cache_misses" in
  Obs.disable ();
  check "add flushes cache" true (misses3 > misses2)

(* ------------------------------------------------------------------ *)
(* Observability: enumeration is backtrack-free after reduction        *)
(* ------------------------------------------------------------------ *)

let test_enumeration_no_dead_work () =
  (* only 3 answers (the rotations of the one triangle), but a long
     pendant chain inflates the raw e relation and hence the
     unreduced bags -- both engines must enumerate backtrack-free *)
  let db = db_of_edges (triangle_plus_chain 40) in
  List.iter
    (fun engine ->
      Obs.enable ();
      Obs.reset ();
      let r = Y.run ~engine ~mode:Y.Answers db triangle_q in
      let value name = Obs.Counter.value (Obs.Counter.make name) in
      let dead = value "query.enum_dead_ends" in
      let rows = value "query.enum_rows" in
      Obs.disable ();
      check_int "three triangles" 3 r.Y.count;
      check "semijoins ran" true (r.Y.stats.Y.semijoins > 0);
      check "reduction shrank the bags" true
        (r.Y.stats.Y.tuples_after_reduction < r.Y.stats.Y.tuples_materialized);
      (* full reduction makes enumeration backtrack-free: no probe
         misses *)
      check_int "no dead ends" 0 dead;
      (* and the tuple-producing work is bounded by answers x bags,
         never by the (much larger) non-answer intermediate tuples *)
      check "enum work bounded by answers" true
        (rows <= r.Y.count * r.Y.stats.Y.bags);
      check "enum work independent of chain length" true
        (rows < r.Y.stats.Y.tuples_materialized))
    [ Y.Columnar; Y.Rows ]

let () =
  Alcotest.run "query"
    [
      ( "parser",
        [
          Alcotest.test_case "basics" `Quick test_parse_basics;
          Alcotest.test_case "errors" `Quick test_parse_errors;
          Alcotest.test_case "multi-rule batches" `Quick test_parse_multi;
          Alcotest.test_case "hypergraph extraction" `Quick
            test_hypergraph_extraction;
        ] );
      ( "qrelation",
        [
          Alcotest.test_case "basics" `Quick test_qrelation_basics;
          Alcotest.test_case "join and semijoin" `Quick
            test_qrelation_join_semijoin;
          Alcotest.test_case "project and select" `Quick
            test_qrelation_project_select;
        ]
        @ List.map QCheck_alcotest.to_alcotest
            [ prop_qrelation_matches_relation ] );
      ( "db",
        [
          Alcotest.test_case "load csv/tsv" `Quick test_db_load;
          Alcotest.test_case "errors" `Quick test_db_load_errors;
          Alcotest.test_case "atom-relation cache" `Quick test_atom_cache;
        ] );
      ( "colexec",
        [
          Alcotest.test_case "selection-vector semijoin" `Quick
            test_colexec_semijoin;
          Alcotest.test_case "radix edge cases" `Quick test_colexec_edge_cases;
          Alcotest.test_case "join-project materialisation" `Quick
            test_colexec_join_project;
          Alcotest.test_case "index and keysum" `Quick
            test_colexec_index_keysum;
          Alcotest.test_case "parallel passes byte-identical" `Quick
            test_colexec_parallel_identical;
        ]
        @ List.map QCheck_alcotest.to_alcotest [ prop_columnar_matches_rows ]
      );
      ( "yannakakis",
        [
          Alcotest.test_case "triangle (cyclic), all modes" `Quick
            test_triangle_all_modes;
          Alcotest.test_case "4-cycle, all modes" `Quick
            test_four_cycle_all_modes;
          Alcotest.test_case "acyclic two-hop" `Quick test_acyclic_query;
          Alcotest.test_case "projections and constants" `Quick
            test_projection_and_constants;
          Alcotest.test_case "empty results" `Quick test_empty_results;
          Alcotest.test_case "two relations" `Quick test_two_relations;
        ]
        @ List.map QCheck_alcotest.to_alcotest [ prop_matches_brute_force ] );
      ( "observability",
        [
          Alcotest.test_case "backtrack-free enumeration" `Quick
            test_enumeration_no_dead_work;
        ] );
    ]
