module Cq = Hd_query.Cq
module Db = Hd_query.Db
module Intern = Hd_query.Intern
module Qrelation = Hd_query.Qrelation
module Y = Hd_query.Yannakakis
module Bf = Hd_query.Brute_force
module Obs = Hd_obs.Obs

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_answers = Alcotest.(check (list (array string)))
let sorted l = List.sort compare l

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec at i =
    if i + nn > nh then false
    else String.sub haystack i nn = needle || at (i + 1)
  in
  at 0

(* ------------------------------------------------------------------ *)
(* Helpers                                                             *)
(* ------------------------------------------------------------------ *)

let db_of_edges edges =
  let db = Db.create () in
  Db.add db ~name:"e" (List.map (fun (a, b) -> [| a; b |]) edges);
  db

let triangle_q = Cq.parse_string "ans(X,Y,Z) :- e(X,Y), e(Y,Z), e(Z,X)."
let two_hop_q = Cq.parse_string "ans(X,Z) :- e(X,Y), e(Y,Z)."

(* a graph whose only triangles are a->b->c->a, plus a long pendant
   chain of non-triangle edges *)
let triangle_plus_chain k =
  let chain =
    List.init k (fun i ->
        ( (if i = 0 then "c" else Printf.sprintf "p%d" (i - 1)),
          Printf.sprintf "p%d" i ))
  in
  [ ("a", "b"); ("b", "c"); ("c", "a") ] @ chain

let modes_agree ?(methods = [ Y.Auto; Y.Min_fill ]) db q =
  let expected = sorted (Bf.answers db q) in
  let expected_count = Bf.count db q in
  let expected_bool = Bf.boolean db q in
  List.iter
    (fun method_ ->
      let a = Y.run ~method_ ~mode:Y.Answers db q in
      check_answers "answers" expected (sorted a.Y.answers);
      check_int "answers count field" expected_count a.Y.count;
      let c = Y.run ~method_ ~mode:Y.Count db q in
      check_int "count" expected_count c.Y.count;
      let b = Y.run ~method_ ~mode:Y.Boolean db q in
      check "boolean" expected_bool b.Y.nonempty)
    methods

(* ------------------------------------------------------------------ *)
(* Parser                                                              *)
(* ------------------------------------------------------------------ *)

let test_parse_basics () =
  let q = Cq.parse_string "ans(X,Y) :- r(X,Z), s(Z,Y)." in
  Alcotest.(check string) "head pred" "ans" q.Cq.head_pred;
  Alcotest.(check (array string)) "head" [| "X"; "Y" |] q.Cq.head;
  check_int "atoms" 2 (List.length q.Cq.body);
  Alcotest.(check (array string)) "vars" [| "X"; "Z"; "Y" |] (Cq.variables q);
  (* constants, quoted constants, multi-line atoms, comments *)
  let q =
    Cq.parse_string
      "ans(X) :-\n  % comment\n  e(a, X),\n  e(X,\n    \"b c\")."
  in
  check_int "atoms" 2 (List.length q.Cq.body);
  (match (List.hd q.Cq.body).Cq.args.(0) with
  | Cq.Const "a" -> ()
  | _ -> Alcotest.fail "expected constant a");
  (match (List.nth q.Cq.body 1).Cq.args.(1) with
  | Cq.Const "b c" -> ()
  | _ -> Alcotest.fail "expected quoted constant");
  (* boolean-style empty head *)
  let q = Cq.parse_string "ok() :- e(X,Y)." in
  Alcotest.(check (array string)) "empty head" [||] q.Cq.head

let expect_parse_error ?(substring = "") text =
  match Cq.parse_string text with
  | _ -> Alcotest.failf "expected a parse failure for %S" text
  | exception Failure msg ->
      if substring <> "" then
        check
          (Printf.sprintf "error %S mentions %S" msg substring)
          true
          (contains msg substring)

let test_parse_errors () =
  expect_parse_error ~substring:"unsafe" "ans(X,W) :- e(X,Y).";
  expect_parse_error ~substring:"line 2" "ans(X) :-\n e(X,Y";
  expect_parse_error ~substring:"must be a variable" "ans(a) :- e(a,Y).";
  expect_parse_error ":- e(X,Y).";
  expect_parse_error "ans(X) e(X,Y)."

let test_hypergraph_extraction () =
  let h = Cq.hypergraph triangle_q in
  check_int "vertices" 3 (Hd_hypergraph.Hypergraph.n_vertices h);
  check_int "edges" 3 (Hd_hypergraph.Hypergraph.n_edges h);
  check "cyclic" false (Hd_hypergraph.Acyclicity.is_acyclic h);
  let h = Cq.hypergraph two_hop_q in
  check "acyclic" true (Hd_hypergraph.Acyclicity.is_acyclic h);
  (* ground atoms contribute no hyperedge *)
  let q = Cq.parse_string "ans(X) :- e(a,b), e(a,X)." in
  check_int "one edge" 1
    (Hd_hypergraph.Hypergraph.n_edges (Cq.hypergraph q))

(* ------------------------------------------------------------------ *)
(* Qrelation                                                           *)
(* ------------------------------------------------------------------ *)

let qr scope rows = Qrelation.make ~scope rows

let test_qrelation_basics () =
  let r = qr [| 0; 1 |] [ [| 1; 2 |]; [| 1; 3 |]; [| 1; 2 |] ] in
  check_int "dedup" 2 (Qrelation.cardinality r);
  check "mem" true (Qrelation.mem r [| 1; 3 |]);
  check "not mem" false (Qrelation.mem r [| 3; 1 |]);
  check_int "get" 3 (Qrelation.get r 1 1);
  check_int "position" 1 (Qrelation.position r 1);
  (* index: both rows share the key on column 0 *)
  let idx = Qrelation.index_on r [| 0 |] in
  check_int "bucket" 2 (List.length (Hashtbl.find idx [| 1 |]));
  check_int "matching" 2 (List.length (Qrelation.matching r ~on:[| 0 |] [| 1 |]))

let test_qrelation_join_semijoin () =
  let a = qr [| 0; 1 |] [ [| 1; 2 |]; [| 1; 3 |]; [| 2; 3 |] ] in
  let b = qr [| 1; 2 |] [ [| 2; 5 |]; [| 3; 6 |] ] in
  let j = Qrelation.join a b in
  Alcotest.(check (array int)) "join scope" [| 0; 1; 2 |] (Qrelation.scope j);
  check_int "join size" 3 (Qrelation.cardinality j);
  check "join tuple" true (Qrelation.mem j [| 1; 2; 5 |]);
  (* disjoint scopes: cartesian product *)
  let c = qr [| 7 |] [ [| 9 |]; [| 8 |] ] in
  check_int "cartesian" 6 (Qrelation.cardinality (Qrelation.join a c));
  let s = Qrelation.semijoin a (qr [| 1; 2 |] [ [| 2; 5 |] ]) in
  check_int "semijoin filters" 1 (Qrelation.cardinality s);
  check "kept" true (Qrelation.mem s [| 1; 2 |]);
  (* semijoin against an empty disjoint relation empties *)
  check "empty disjoint" true
    (Qrelation.is_empty (Qrelation.semijoin a (qr [| 7 |] [])));
  check_int "nonempty disjoint keeps all" 3
    (Qrelation.cardinality (Qrelation.semijoin a c))

let test_qrelation_project_select () =
  let a = qr [| 0; 1 |] [ [| 1; 2 |]; [| 1; 3 |]; [| 2; 3 |] ] in
  check_int "project dedups" 2
    (Qrelation.cardinality (Qrelation.project a [| 0 |]));
  check_int "select" 2
    (Qrelation.cardinality (Qrelation.select_eq a ~attr:0 ~value:1));
  check "equal" true
    (Qrelation.equal a (qr [| 0; 1 |] [ [| 2; 3 |]; [| 1; 3 |]; [| 1; 2 |] ]))

(* the csp Relation and Qrelation implement the same algebra *)
let prop_qrelation_matches_relation =
  QCheck.Test.make ~count:200 ~name:"Qrelation join/semijoin = Relation"
    QCheck.(make QCheck.Gen.(pair int int))
    (fun (s1, s2) ->
      let rng = Random.State.make [| s1; s2 |] in
      let mk scope =
        List.init
          (Random.State.int rng 8)
          (fun _ ->
            Array.init (Array.length scope) (fun _ -> Random.State.int rng 3))
      in
      let sa = [| 0; 1 |] and sb = [| 1; 2 |] in
      let ra = mk sa and rb = mk sb in
      let q_join = Qrelation.join (qr sa ra) (qr sb rb) in
      let r_join =
        Hd_csp.Relation.join
          (Hd_csp.Relation.make ~scope:sa ra)
          (Hd_csp.Relation.make ~scope:sb rb)
      in
      let q_semi = Qrelation.semijoin (qr sa ra) (qr sb rb) in
      let r_semi =
        Hd_csp.Relation.semijoin
          (Hd_csp.Relation.make ~scope:sa ra)
          (Hd_csp.Relation.make ~scope:sb rb)
      in
      sorted (Qrelation.rows q_join)
      = sorted (Hd_csp.Relation.tuples r_join)
      && sorted (Qrelation.rows q_semi)
         = sorted (Hd_csp.Relation.tuples r_semi))

(* ------------------------------------------------------------------ *)
(* Db loading                                                          *)
(* ------------------------------------------------------------------ *)

let with_temp_dir f =
  let dir =
    Filename.temp_file "hd_query_test" ""
  in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  Fun.protect
    ~finally:(fun () ->
      Array.iter
        (fun entry -> Sys.remove (Filename.concat dir entry))
        (Sys.readdir dir);
      Unix.rmdir dir)
    (fun () -> f dir)

let write_file path text =
  let oc = open_out path in
  output_string oc text;
  close_out oc

let test_db_load () =
  with_temp_dir @@ fun dir ->
  write_file (Filename.concat dir "e.csv")
    "# comment\na,b\nb,c\n\nc,a\n";
  write_file (Filename.concat dir "color.tsv") "a\tred\nb\tblue\n";
  let db = Db.create () in
  Db.load_dir db dir;
  Alcotest.(check (list string)) "relations" [ "color"; "e" ]
    (Db.relation_names db);
  (match Db.find db "e" with
  | Some r -> check_int "e rows" 3 (Qrelation.cardinality r)
  | None -> Alcotest.fail "missing e");
  (match Db.find db "color" with
  | Some r -> check_int "color rows" 2 (Qrelation.cardinality r)
  | None -> Alcotest.fail "missing color");
  (* a query joining both loaded relations *)
  let q = Cq.parse_string "ans(X,C) :- e(X,Y), color(Y,C)." in
  let r = Y.run ~mode:Y.Answers db q in
  check_answers "join across files"
    (sorted [ [| "c"; "red" |]; [| "a"; "blue" |] ])
    (sorted r.Y.answers)

let test_db_load_errors () =
  with_temp_dir @@ fun dir ->
  write_file (Filename.concat dir "bad.csv") "a,b\nc\n";
  let db = Db.create () in
  (match Db.load_dir db dir with
  | () -> Alcotest.fail "expected ragged-row failure"
  | exception Failure msg -> check "mentions line" true (contains msg "line 2"));
  (* unknown relation in a query *)
  let db = db_of_edges [ ("a", "b") ] in
  check "unknown relation" true
    (match Y.run ~mode:Y.Boolean db (Cq.parse_string "ans(X) :- f(X,Y).") with
    | _ -> false
    | exception Failure _ -> true)

(* ------------------------------------------------------------------ *)
(* Engine vs brute force                                               *)
(* ------------------------------------------------------------------ *)

let test_triangle_all_modes () =
  let db =
    db_of_edges
      [
        ("a", "b"); ("b", "c"); ("c", "a");
        ("b", "d"); ("d", "e"); ("e", "b");
        ("c", "d"); ("d", "a");
      ]
  in
  modes_agree ~methods:[ Y.Auto; Y.Min_fill; Y.Bb_ghw ] db triangle_q;
  (* the plan really is cyclic: a GHD of width >= 2 *)
  let r = Y.run ~mode:Y.Answers db triangle_q in
  check "not acyclic" false r.Y.stats.Y.acyclic;
  check "width >= 2" true (r.Y.stats.Y.width >= 2)

let test_four_cycle_all_modes () =
  let q = Cq.parse_string "ans(W,X,Y,Z) :- e(W,X), e(X,Y), e(Y,Z), e(Z,W)." in
  let db =
    db_of_edges
      [
        ("a", "b"); ("b", "c"); ("c", "d"); ("d", "a");
        ("b", "a"); ("c", "b"); ("a", "c"); ("d", "b");
      ]
  in
  modes_agree db q

let test_acyclic_query () =
  let db = db_of_edges (triangle_plus_chain 5) in
  modes_agree db two_hop_q;
  let r = Y.run ~mode:Y.Count db two_hop_q in
  check "acyclic plan" true r.Y.stats.Y.acyclic;
  check_int "acyclic width" 1 r.Y.stats.Y.width

let test_projection_and_constants () =
  let db = db_of_edges (triangle_plus_chain 4) in
  List.iter
    (fun text -> modes_agree db (Cq.parse_string text))
    [
      "ans(X) :- e(X,Y), e(Y,Z).";
      "ans(X) :- e(a,X).";
      "ans(X) :- e(X,X).";
      "ans(X,Y) :- e(X,Y), e(Y,X).";
      "ok() :- e(a,b), e(b,c).";
      "ans(X) :- e(zzz,X).";
    ]

let test_empty_results () =
  let db = db_of_edges [ ("a", "b"); ("b", "c") ] in
  let r = Y.run ~mode:Y.Answers db triangle_q in
  check "no triangles" false r.Y.nonempty;
  check_answers "empty" [] r.Y.answers;
  check_int "count 0" 0 (Y.run ~mode:Y.Count db triangle_q).Y.count;
  check "boolean false" false (Y.run ~mode:Y.Boolean db triangle_q).Y.nonempty

(* random instances, several query shapes, every mode, both the
   acyclic-aware and the forced-GHD planner *)
let prop_matches_brute_force =
  let queries =
    [
      triangle_q;
      two_hop_q;
      Cq.parse_string "ans(X,Y,Z) :- e(X,Y), e(Y,Z), e(Z,X), e(X,Z).";
      Cq.parse_string "ans(X) :- e(X,Y), e(Y,X).";
      Cq.parse_string
        "ans(W,Z) :- e(W,X), e(X,Y), e(Y,Z), e(Z,W), e(W,Y).";
    ]
  in
  QCheck.Test.make ~count:60 ~name:"hd_query = brute force on random graphs"
    QCheck.(make QCheck.Gen.(pair (2 -- 6) int))
    (fun (n, seed) ->
      let rng = Random.State.make [| n; seed |] in
      let m = 1 + Random.State.int rng 14 in
      let edges =
        List.init m (fun _ ->
            ( Printf.sprintf "v%d" (Random.State.int rng n),
              Printf.sprintf "v%d" (Random.State.int rng n) ))
      in
      let db = db_of_edges edges in
      List.for_all
        (fun q ->
          let expected = sorted (Bf.answers db q) in
          List.for_all
            (fun method_ ->
              sorted (Y.run ~method_ ~mode:Y.Answers db q).Y.answers = expected
              && (Y.run ~method_ ~mode:Y.Count db q).Y.count
                 = List.length expected
              && (Y.run ~method_ ~mode:Y.Boolean db q).Y.nonempty
                 = (expected <> []))
            [ Y.Auto; Y.Min_fill ])
        queries)

(* two-relation query from the issue statement *)
let test_two_relations () =
  let db = Db.create () in
  Db.add db ~name:"r"
    [ [| "1"; "2" |]; [| "1"; "3" |]; [| "2"; "3" |]; [| "4"; "4" |] ];
  Db.add db ~name:"s" [ [| "2"; "9" |]; [| "3"; "9" |]; [| "4"; "7" |] ];
  modes_agree db (Cq.parse_string "ans(X,Y) :- r(X,Z), s(Z,Y).")

(* ------------------------------------------------------------------ *)
(* Observability: enumeration is backtrack-free after reduction        *)
(* ------------------------------------------------------------------ *)

let test_enumeration_no_dead_work () =
  (* only 3 answers (the rotations of the one triangle), but a long
     pendant chain inflates the raw e relation and hence the
     unreduced bags *)
  let db = db_of_edges (triangle_plus_chain 40) in
  Obs.enable ();
  Obs.reset ();
  let r = Y.run ~mode:Y.Answers db triangle_q in
  let value name = Obs.Counter.value (Obs.Counter.make name) in
  let dead = value "query.enum_dead_ends" in
  let rows = value "query.enum_rows" in
  Obs.disable ();
  check_int "three triangles" 3 r.Y.count;
  check "semijoins ran" true (r.Y.stats.Y.semijoins > 0);
  check "reduction shrank the bags" true
    (r.Y.stats.Y.tuples_after_reduction < r.Y.stats.Y.tuples_materialized);
  (* full reduction makes enumeration backtrack-free: no probe misses *)
  check_int "no dead ends" 0 dead;
  (* and the tuple-producing work is bounded by answers x bags, never
     by the (much larger) non-answer intermediate tuples *)
  check "enum work bounded by answers"
    true
    (rows <= r.Y.count * r.Y.stats.Y.bags);
  check "enum work independent of chain length" true
    (rows < r.Y.stats.Y.tuples_materialized)

let () =
  Alcotest.run "query"
    [
      ( "parser",
        [
          Alcotest.test_case "basics" `Quick test_parse_basics;
          Alcotest.test_case "errors" `Quick test_parse_errors;
          Alcotest.test_case "hypergraph extraction" `Quick
            test_hypergraph_extraction;
        ] );
      ( "qrelation",
        [
          Alcotest.test_case "basics" `Quick test_qrelation_basics;
          Alcotest.test_case "join and semijoin" `Quick
            test_qrelation_join_semijoin;
          Alcotest.test_case "project and select" `Quick
            test_qrelation_project_select;
        ]
        @ List.map QCheck_alcotest.to_alcotest
            [ prop_qrelation_matches_relation ] );
      ( "db",
        [
          Alcotest.test_case "load csv/tsv" `Quick test_db_load;
          Alcotest.test_case "errors" `Quick test_db_load_errors;
        ] );
      ( "yannakakis",
        [
          Alcotest.test_case "triangle (cyclic), all modes" `Quick
            test_triangle_all_modes;
          Alcotest.test_case "4-cycle, all modes" `Quick
            test_four_cycle_all_modes;
          Alcotest.test_case "acyclic two-hop" `Quick test_acyclic_query;
          Alcotest.test_case "projections and constants" `Quick
            test_projection_and_constants;
          Alcotest.test_case "empty results" `Quick test_empty_results;
          Alcotest.test_case "two relations" `Quick test_two_relations;
        ]
        @ List.map QCheck_alcotest.to_alcotest [ prop_matches_brute_force ] );
      ( "observability",
        [
          Alcotest.test_case "backtrack-free enumeration" `Quick
            test_enumeration_no_dead_work;
        ] );
    ]
