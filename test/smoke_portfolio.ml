(* 5-second portfolio smoke test for the @runtest-quick alias: race the
   treewidth roster on grid4 and insist on the known optimum. *)

module St = Hd_search.Search_types

let () =
  let g =
    match Hd_instances.Graphs.by_name "grid4" with
    | Some g -> g
    | None -> failwith "grid4 instance missing"
  in
  let budget = { St.time_limit = Some 5.0; max_states = None } in
  let r = Hd_parallel.Portfolio.solve_tw ~jobs:2 ~budget ~seed:1 g in
  Format.printf "portfolio smoke: grid4 %a@." Hd_parallel.Portfolio.pp r;
  match r.Hd_parallel.Portfolio.outcome with
  | St.Exact 4 -> ()
  | St.Exact w ->
      Format.eprintf "expected width 4 on grid4, got %d@." w;
      exit 1
  | St.Bounds { lb; ub } ->
      Format.eprintf "portfolio failed to close grid4 in 5s: [%d,%d]@." lb ub;
      exit 1
