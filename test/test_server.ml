(* hd_server: canonical signatures, the decomposition cache, the wire
   protocol, the time-sliced job scheduler, and the serve loop.

   The scheduler tests run with [slice = 0.0] — every actual clock read
   inside a solve yields — which makes the park/resume machinery fire
   deterministically instead of depending on wall-clock timing. *)

module Graph = Hd_graph.Graph
module Hypergraph = Hd_hypergraph.Hypergraph
module Hg_format = Hd_hypergraph.Hg_format
module B = Hd_engine.Budget
module S = Hd_engine.Solver
module Obs = Hd_obs.Obs
module J = Obs.Json
module Signature = Hd_server.Signature
module Cache = Hd_server.Cache
module Protocol = Hd_server.Protocol
module Jobs = Hd_server.Jobs
module Server = Hd_server.Server

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

let ensure_registry () = Server.ensure_registry ()

(* the 4-cycle of test/corpus_golden/good.hg, and the same instance
   with every vertex renamed and the edges reshuffled *)
let cycle4_a = "e1(a,b), e2(b,c), e3(c,d), e4(d,a)."
let cycle4_b = "p1(w,x), p2(y,z), p3(x,y), p4(z,w)."
let path4 = "e1(a,b), e2(b,c), e3(c,d)."

let hg text = Hg_format.parse_string text
let sig_of text = Signature.of_hypergraph (hg text)

(* --- JSON plumbing ------------------------------------------------- *)

let jget j name =
  match J.member name j with
  | Some v -> v
  | None -> Alcotest.failf "missing field %S in %s" name (J.to_compact j)

let jint j name =
  match jget j name with
  | J.Int i -> i
  | v -> Alcotest.failf "field %S not an int: %s" name (J.to_compact v)

let jstr j name =
  match jget j name with
  | J.String s -> s
  | v -> Alcotest.failf "field %S not a string: %s" name (J.to_compact v)

let jbool j name =
  match jget j name with
  | J.Bool b -> b
  | v -> Alcotest.failf "field %S not a bool: %s" name (J.to_compact v)

(* ------------------------------------------------------------------ *)
(* Signature                                                           *)
(* ------------------------------------------------------------------ *)

let test_signature_invariant_under_relabeling () =
  let sa = sig_of cycle4_a and sb = sig_of cycle4_b in
  check_str "equal canonical keys" (Signature.key sa) (Signature.key sb);
  check_int "equal hashes" (Signature.hash sa) (Signature.hash sb);
  check "hash is 63-bit non-negative" true (Signature.hash sa >= 0)

let test_signature_separates_instances () =
  let sa = sig_of cycle4_a and sp = sig_of path4 in
  check "cycle and path keys differ" true
    (Signature.key sa <> Signature.key sp)

let test_signature_permutations_invert () =
  let s = sig_of cycle4_a in
  let n = Array.length s.Signature.canon_of_orig in
  check_int "square permutation arrays" n
    (Array.length s.Signature.orig_of_canon);
  let ordering = Array.init n (fun i -> n - 1 - i) in
  let roundtrip =
    Signature.of_canonical s (Signature.to_canonical s ordering)
  in
  check "of_canonical inverts to_canonical" true (roundtrip = ordering);
  (* canon_of_orig really is a permutation *)
  let seen = Array.make n false in
  Array.iter (fun c -> seen.(c) <- true) s.Signature.canon_of_orig;
  check "bijective relabeling" true (Array.for_all Fun.id seen)

(* ------------------------------------------------------------------ *)
(* Cache                                                               *)
(* ------------------------------------------------------------------ *)

let entry ?ordering outcome =
  {
    Cache.solver = "bb-ghw";
    kind = S.Ghw;
    outcome;
    ordering;
    visited = 1;
    generated = 1;
    elapsed = 0.001;
  }

let test_cache_serves_exact_only () =
  let c = Cache.create ~capacity:8 () in
  let sa = sig_of cycle4_a and sp = sig_of path4 in
  check "empty cache misses" true (Cache.find c ~kind:S.Ghw sa = None);
  Cache.store c ~kind:S.Ghw sa (entry (S.Exact 2));
  (match Cache.find c ~kind:S.Ghw sa with
  | Some e -> check "exact entry served" true (e.Cache.outcome = S.Exact 2)
  | None -> Alcotest.fail "stored exact entry must hit");
  check "other kind is a distinct slot" true
    (Cache.find c ~kind:S.Tw sa = None);
  (* a bounds entry is deliberately a miss, and a later exact solve
     replaces it *)
  Cache.store c ~kind:S.Ghw sp (entry (S.Bounds { lb = 1; ub = 3 }));
  check "bounds entry not served" true (Cache.find c ~kind:S.Ghw sp = None);
  Cache.store c ~kind:S.Ghw sp (entry (S.Exact 1));
  check "exact replaces bounds" true
    (match Cache.find c ~kind:S.Ghw sp with
    | Some e -> e.Cache.outcome = S.Exact 1
    | None -> false);
  (* a worse answer must not clobber a better one *)
  Cache.store c ~kind:S.Ghw sp (entry (S.Bounds { lb = 0; ub = 9 }));
  check "bounds does not clobber exact" true
    (match Cache.find c ~kind:S.Ghw sp with
    | Some e -> e.Cache.outcome = S.Exact 1
    | None -> false);
  check "hits counted" true (Cache.hits c >= 3);
  check "misses counted" true (Cache.misses c >= 3)

let test_cache_lru_eviction () =
  let c = Cache.create ~capacity:2 () in
  let s1 = sig_of cycle4_a and s2 = sig_of path4 in
  let s3 = sig_of "t1(a,b), t2(b,c), t3(a,c)." in
  Cache.store c ~kind:S.Ghw s1 (entry (S.Exact 2));
  Cache.store c ~kind:S.Ghw s2 (entry (S.Exact 1));
  ignore (Cache.find c ~kind:S.Ghw s1);
  (* s2 is now least recently used; inserting s3 evicts it *)
  Cache.store c ~kind:S.Ghw s3 (entry (S.Exact 1));
  check_int "capacity respected" 2 (Cache.size c);
  check "recently used entry kept" true
    (Cache.find c ~kind:S.Ghw s1 <> None);
  check "LRU entry evicted" true (Cache.find c ~kind:S.Ghw s2 = None)

(* ------------------------------------------------------------------ *)
(* Protocol                                                            *)
(* ------------------------------------------------------------------ *)

let test_protocol_parse () =
  (match Protocol.parse {|{"op":"submit","hypergraph":"e(a,b)."}|} with
  | Ok (Protocol.Submit s) ->
      check "inline hypergraph source" true
        (s.Protocol.source = Protocol.Hypergraph_text "e(a,b).");
      check "cache defaults on" true s.Protocol.use_cache;
      check "ordering defaults off" false s.Protocol.with_ordering
  | _ -> Alcotest.fail "well-formed submit must parse");
  (match
     Protocol.parse
       {|{"op":"submit","cq":"ans() :- r(X,Y).","solver":"det-k","time_limit":2,"cache":false}|}
   with
  | Ok (Protocol.Submit s) ->
      check "cq source" true
        (s.Protocol.source = Protocol.Cq_text "ans() :- r(X,Y).");
      check "solver carried" true (s.Protocol.solver = Some "det-k");
      check "int time limit accepted as number" true
        (s.Protocol.time_limit = Some 2.0);
      check "cache off" false s.Protocol.use_cache
  | _ -> Alcotest.fail "cq submit must parse");
  (match Protocol.parse {|{"op":"wait","job":3}|} with
  | Ok (Protocol.Wait { job = 3; timeout }) ->
      check "default timeout" true (timeout = 60.0)
  | _ -> Alcotest.fail "wait must parse");
  let is_error s =
    match Protocol.parse s with Error _ -> true | Ok _ -> false
  in
  check "malformed json rejected" true (is_error "not json");
  check "missing op rejected" true (is_error {|{"job":1}|});
  check "unknown op rejected" true (is_error {|{"op":"frobnicate"}|});
  check "two sources rejected" true
    (is_error {|{"op":"submit","hypergraph":"e(a,b).","file":"x.hg"}|});
  check "sourceless submit rejected" true (is_error {|{"op":"submit"}|});
  check "poll without job rejected" true (is_error {|{"op":"poll"}|});
  check "negative job rejected" true (is_error {|{"op":"poll","job":-1}|})

let test_protocol_parse_bulk () =
  (match
     Protocol.parse
       {|{"op":"bulk","cqs":["a(X) :- e(X,Y)."],"data":"dir","mode":"answers","limit":5}|}
   with
  | Ok (Protocol.Bulk b) ->
      check_int "one cq" 1 (List.length b.Protocol.cqs);
      check "bare data string is a singleton" true (b.Protocol.data = [ "dir" ]);
      check_str "mode carried" "answers" b.Protocol.mode;
      check "limit carried" true (b.Protocol.answer_limit = Some 5);
      check "cache defaults on" true b.Protocol.bulk_use_cache
  | _ -> Alcotest.fail "well-formed bulk must parse");
  (match Protocol.parse {|{"op":"bulk","cqs":["a(X) :- e(X,Y)."]}|} with
  | Ok (Protocol.Bulk b) ->
      check_str "mode defaults to count" "count" b.Protocol.mode;
      check "data may be absent at parse time" true (b.Protocol.data = [])
  | _ -> Alcotest.fail "dataless bulk parses (server rejects later)");
  let is_error s =
    match Protocol.parse s with Error _ -> true | Ok _ -> false
  in
  check "missing cqs rejected" true (is_error {|{"op":"bulk","data":"d"}|});
  check "empty cqs rejected" true
    (is_error {|{"op":"bulk","cqs":[],"data":"d"}|});
  check "bad mode rejected" true
    (is_error
       {|{"op":"bulk","cqs":["a(X) :- e(X,Y)."],"data":"d","mode":"frobnicate"}|});
  check "non-string cq rejected" true
    (is_error {|{"op":"bulk","cqs":[3],"data":"d"}|})

(* ------------------------------------------------------------------ *)
(* Jobs: slicing, interleaving, cancellation, cache hits               *)
(* ------------------------------------------------------------------ *)

(* a poll-dense instance: the GA checks its budget on every fitness
   evaluation, so a state cap gives a long run with many yields *)
let ga_spec = { B.time_limit = Some 30.0; max_states = Some 1500 }

let grid_hg rows cols = Hypergraph.of_graph (Graph.grid rows cols)

let submit_hg jobs ~solver ~spec ?(use_cache = false) h =
  Jobs.submit jobs ~solver ~spec ~use_cache
    ~signature:(Signature.of_hypergraph h) (S.Hypergraph h)

let terminal (s : Jobs.snapshot) =
  s.Jobs.state = "done" || s.Jobs.state = "cancelled"
  || s.Jobs.state = "failed"

let test_jobs_two_jobs_interleave_on_one_worker () =
  ensure_registry ();
  let solver = Option.get (S.find "ga-ghw") in
  let cache = Cache.create () in
  let jobs = Jobs.create ~workers:1 ~slice:0.0 ~cache () in
  Fun.protect ~finally:(fun () -> Jobs.shutdown jobs) @@ fun () ->
  let trace = Atomic.make [] in
  let sub =
    Obs.Tap.subscribe (fun ev ->
        if ev.Obs.Tap.name = "server.slice" then begin
          let id = jint ev.Obs.Tap.data "job" in
          let rec push () =
            let cur = Atomic.get trace in
            if not (Atomic.compare_and_set trace cur (id :: cur)) then push ()
          in
          push ()
        end)
  in
  let a = submit_hg jobs ~solver ~spec:ga_spec (grid_hg 4 4) in
  let b = submit_hg jobs ~solver ~spec:ga_spec (grid_hg 3 5) in
  let sa = Option.get (Jobs.wait jobs a.Jobs.id ~timeout:60.0) in
  let sb = Option.get (Jobs.wait jobs b.Jobs.id ~timeout:60.0) in
  Obs.Tap.unsubscribe sub;
  check_str "job a done" "done" sa.Jobs.state;
  check_str "job b done" "done" sb.Jobs.state;
  check "job a was sliced" true (sa.Jobs.slices >= 2);
  check "job b was sliced" true (sb.Jobs.slices >= 2);
  (* with one worker and zero-length slices the scheduler must
     round-robin: some slice of b lands between two slices of a *)
  let tr = List.rev (Atomic.get trace) in
  let rec interleaved seen_a = function
    | [] -> false
    | id :: rest ->
        if id = b.Jobs.id && seen_a then List.mem a.Jobs.id rest
        else interleaved (seen_a || id = a.Jobs.id) rest
  in
  check "slices interleave across jobs" true (interleaved false tr);
  (* progress events were delivered to the poll stream too *)
  check "slice events drained by wait/poll" true
    (List.length sa.Jobs.events > 0 || sa.Jobs.slices > 0)

(* a hypergraph far too hard to solve exactly: 40 vertices in a
   connectivity cycle plus 50 pseudorandom triples *)
let hard_instance () =
  let buf = Buffer.create 2048 in
  for v = 0 to 39 do
    Buffer.add_string buf (Printf.sprintf "c%d(v%d,v%d),\n" v v ((v + 1) mod 40))
  done;
  let state = ref 12345 in
  let next m =
    state := (!state * 1103515245) + 12345;
    (!state lsr 16) mod m
  in
  for e = 0 to 49 do
    let a = next 40 in
    let b = (a + 1 + next 38) mod 40 in
    let c = (b + 1 + next 37) mod 40 in
    if a <> b && b <> c && a <> c then
      Buffer.add_string buf (Printf.sprintf "r%d(v%d,v%d,v%d),\n" e a b c)
  done;
  Buffer.add_string buf "tail(v0,v1).";
  hg (Buffer.contents buf)

let test_jobs_cancel_inflight () =
  ensure_registry ();
  let solver = Option.get (S.find "bb-ghw") in
  let cache = Cache.create () in
  let jobs = Jobs.create ~workers:1 ~slice:0.0 ~cache () in
  Fun.protect ~finally:(fun () -> Jobs.shutdown jobs) @@ fun () ->
  let spec = { B.time_limit = None; max_states = None } in
  let s0 =
    submit_hg jobs ~solver ~spec (hard_instance ())
  in
  check_str "starts queued" "queued" s0.Jobs.state;
  (* let it get some slices in, then cancel *)
  let deadline = Unix.gettimeofday () +. 10.0 in
  let rec spin () =
    let s = Option.get (Jobs.poll jobs s0.Jobs.id) in
    if s.Jobs.slices >= 2 || Unix.gettimeofday () > deadline then s
    else begin
      Unix.sleepf 0.002;
      spin ()
    end
  in
  let running = spin () in
  check "got sliced before cancel" true (running.Jobs.slices >= 1);
  ignore (Jobs.cancel jobs s0.Jobs.id);
  let final = Option.get (Jobs.wait jobs s0.Jobs.id ~timeout:30.0) in
  check_str "cancel lands" "cancelled" final.Jobs.state;
  check "terminal" true (terminal final);
  (* the parked continuation was resumed, not dropped: the solver
     returned a result carrying the bounds it had *)
  check "cancelled job still reports a result" true
    (final.Jobs.result <> None)

let test_jobs_cache_hit_on_isomorphic_resubmit () =
  ensure_registry ();
  let solver = Option.get (S.find "bb-ghw") in
  let cache = Cache.create () in
  let jobs = Jobs.create ~workers:2 ~slice:0.01 ~cache () in
  Fun.protect ~finally:(fun () -> Jobs.shutdown jobs) @@ fun () ->
  let spec = { B.time_limit = Some 20.0; max_states = None } in
  let first =
    submit_hg jobs ~solver ~spec ~use_cache:true (hg cycle4_a)
  in
  let s1 = Option.get (Jobs.wait jobs first.Jobs.id ~timeout:30.0) in
  check_str "first solve done" "done" s1.Jobs.state;
  check "first solve not cached" false s1.Jobs.cached;
  let w1 =
    match s1.Jobs.result with
    | Some r -> S.value r.S.outcome
    | None -> Alcotest.fail "finished job must carry a result"
  in
  (* the same instance with renamed vertices and shuffled edges is
     answered from the cache, without running a solver *)
  let second =
    submit_hg jobs ~solver ~spec ~use_cache:true (hg cycle4_b)
  in
  check_str "resubmit already done" "done" second.Jobs.state;
  check "resubmit served from cache" true second.Jobs.cached;
  check_int "resubmit ran no slices" 0 second.Jobs.slices;
  (match second.Jobs.result with
  | Some r ->
      check_int "cached width equals solved width" w1 (S.value r.S.outcome);
      (match r.S.ordering with
      | Some o ->
          let sorted = Array.copy o in
          Array.sort compare sorted;
          check "cached witness remapped to a permutation" true
            (sorted = Array.init (Array.length o) Fun.id)
      | None -> ())
  | None -> Alcotest.fail "cached job must carry a result");
  check "cache counted the hit" true (Cache.hits cache >= 1)

(* ------------------------------------------------------------------ *)
(* The serve loop, end to end over a pipe pair                         *)
(* ------------------------------------------------------------------ *)

let with_server ~config f =
  let req_r, req_w = Unix.pipe () in
  let resp_r, resp_w = Unix.pipe () in
  let server_ic = Unix.in_channel_of_descr req_r in
  let server_oc = Unix.out_channel_of_descr resp_w in
  let server =
    Domain.spawn (fun () ->
        let outcome = Server.serve ~config server_ic server_oc in
        close_out_noerr server_oc;
        outcome)
  in
  let to_server = Unix.out_channel_of_descr req_w in
  let from_server = Unix.in_channel_of_descr resp_r in
  let send line =
    output_string to_server line;
    output_char to_server '\n';
    flush to_server
  in
  let recv () = J.parse (input_line from_server) in
  let result = f send recv in
  close_out_noerr to_server;
  let outcome = Domain.join server in
  close_in_noerr from_server;
  (result, outcome)

let test_serve_transcript () =
  Obs.enable ();
  let config =
    {
      Server.default_config with
      Server.workers = 2;
      slice = 0.01;
      default_time_limit = Some 20.0;
    }
  in
  let hits_before =
    Obs.Counter.value (Obs.Counter.make "server.cache_hits")
  in
  let (), outcome =
    with_server ~config (fun send recv ->
        (* submit, then wait for the result *)
        send
          (Printf.sprintf
             {|{"op":"submit","hypergraph":"%s","solver":"bb-ghw","ordering":true}|}
             cycle4_a);
        let r1 = recv () in
        check "submit ok" true (jbool r1 "ok");
        let job1 = jint r1 "job" in
        send (Printf.sprintf {|{"op":"wait","job":%d,"timeout":30}|} job1);
        let r2 = recv () in
        check_str "first solve done" "done" (jstr r2 "state");
        check "first solve not cached" false (jbool r2 "cached");
        let res1 = jget r2 "result" in
        check_str "exact outcome" "exact" (jstr res1 "outcome");
        let width1 = jint res1 "width" in
        check_int "4-cycle ghw" 2 width1;
        check_str "solver echoed" "bb-ghw" (jstr res1 "solver");
        (* protocol errors do not kill the session *)
        send "this is not json";
        let e1 = recv () in
        check "protocol error flagged" false (jbool e1 "ok");
        send {|{"op":"poll","job":999}|};
        let e2 = recv () in
        check "unknown job flagged" false (jbool e2 "ok");
        (* resubmit the renamed instance: answered from the cache *)
        send
          (Printf.sprintf
             {|{"op":"submit","hypergraph":"%s","solver":"bb-ghw","ordering":true}|}
             cycle4_b);
        let r3 = recv () in
        check "resubmit ok" true (jbool r3 "ok");
        check_str "resubmit already done" "done" (jstr r3 "state");
        check "resubmit cached" true (jbool r3 "cached");
        let res2 = jget r3 "result" in
        check_int "cached width matches" width1 (jint res2 "width");
        (match jget res2 "ordering" with
        | J.List l -> check_int "witness covers the instance" 4 (List.length l)
        | _ -> Alcotest.fail "cached result must carry the ordering");
        (* stats reflect the hit *)
        send {|{"op":"stats"}|};
        let st = recv () in
        let cache = jget st "cache" in
        check "stats: cache hit recorded" true (jint cache "hits" >= 1);
        let counters = jget st "counters" in
        check "stats: server.cache_hits counter" true
          (jint counters "server.cache_hits" > hits_before);
        check "stats: slices counted" true
          (jint counters "server.slices" >= 1);
        (* clean shutdown *)
        send {|{"op":"shutdown"}|};
        let bye = recv () in
        check "shutdown acknowledged" true (jbool bye "ok"))
  in
  check "serve returned Shutdown" true (outcome = `Shutdown)

(* the bulk op end to end: N isomorphic cyclic queries over one CSV
   instance share exactly one decomposition through the cache, and the
   answer counts match the in-process brute-force oracle *)
let test_serve_bulk () =
  ensure_registry ();
  let dir = Filename.temp_file "hd_bulk_test" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  Fun.protect
    ~finally:(fun () ->
      Array.iter
        (fun entry -> Sys.remove (Filename.concat dir entry))
        (Sys.readdir dir);
      Unix.rmdir dir)
  @@ fun () ->
  let oc = open_out (Filename.concat dir "e.csv") in
  output_string oc "a,b\nb,c\nc,a\nb,d\nd,e\ne,b\nc,d\nd,a\n";
  close_out oc;
  (* expected counts from the brute-force oracle *)
  let db = Hd_query.Db.create () in
  Hd_query.Db.load_dir db dir;
  let tri_n =
    Hd_query.Brute_force.count db
      (Hd_query.Cq.parse_string "t(X,Y,Z) :- e(X,Y), e(Y,Z), e(Z,X).")
  in
  let hop_n =
    Hd_query.Brute_force.count db
      (Hd_query.Cq.parse_string "h(X,Z) :- e(X,Y), e(Y,Z).")
  in
  Obs.enable ();
  let value name = Obs.Counter.value (Obs.Counter.make name) in
  let decomp0 = value "server.bulk_decompositions" in
  let cached0 = value "server.bulk_cached_decompositions" in
  let config =
    {
      Server.default_config with
      Server.workers = 2;
      slice = 0.01;
      default_time_limit = Some 20.0;
    }
  in
  let (), outcome =
    with_server ~config (fun send recv ->
        (* a bulk without data is an error, not a dead session *)
        send {|{"op":"bulk","cqs":["t(X,Y,Z) :- e(X,Y), e(Y,Z), e(Z,X)."]}|};
        check "dataless bulk flagged" false (jbool (recv ()) "ok");
        (* three isomorphic triangles (renamed variables) + one
           acyclic two-hop, one request *)
        send
          (Printf.sprintf
             {|{"op":"bulk","cqs":["t1(X,Y,Z) :- e(X,Y), e(Y,Z), e(Z,X).","t2(A,B,C) :- e(A,B), e(B,C), e(C,A).","t3(P,Q,R) :- e(P,Q), e(Q,R), e(R,P).","h(X,Z) :- e(X,Y), e(Y,Z)."],"data":"%s","mode":"count"}|}
             dir);
        let r = recv () in
        check "bulk ok" true (jbool r "ok");
        check_int "four queries answered" 4 (jint r "n");
        (* the acceptance criterion: one decomposition for the whole
           isomorphism class, the rest served from the cache *)
        check_int "exactly one decomposition" 1 (jint r "decompositions");
        check_int "two cache hits" 2 (jint r "cache_hits");
        (match jget r "queries" with
        | J.List qs ->
            check_int "per-query entries" 4 (List.length qs);
            List.iteri
              (fun i q ->
                check_int "query index echoed" i (jint q "query");
                if i < 3 then begin
                  check_int "triangle count" tri_n (jint q "count");
                  check_str "ghd plan" "ghd" (jstr q "plan");
                  check "cached iff not first of its class" true
                    (jbool q "cached" = (i > 0))
                end
                else begin
                  check_int "two-hop count" hop_n (jint q "count");
                  check_str "acyclic plan" "acyclic" (jstr q "plan")
                end)
              qs
        | _ -> Alcotest.fail "queries must be a list");
        (* the stats counters attribute the sharing *)
        send {|{"op":"stats"}|};
        let st = recv () in
        let counters = jget st "counters" in
        check "bulk requests counted" true
          (jint counters "server.bulk_requests" >= 1);
        check_int "one bulk decomposition" (decomp0 + 1)
          (jint counters "server.bulk_decompositions");
        check_int "two bulk cached decompositions" (cached0 + 2)
          (jint counters "server.bulk_cached_decompositions");
        check "server cache hits recorded" true
          (jint counters "server.cache_hits" >= 2);
        send {|{"op":"shutdown"}|};
        check "shutdown acknowledged" true (jbool (recv ()) "ok"))
  in
  check "serve returned Shutdown" true (outcome = `Shutdown)

let test_serve_eof_closes () =
  let config = { Server.default_config with Server.workers = 1 } in
  let (), outcome = with_server ~config (fun _send _recv -> ()) in
  check "serve returned Eof on closed stream" true (outcome = `Eof)

let () =
  Alcotest.run "hd_server"
    [
      ( "signature",
        [
          Alcotest.test_case "invariant under relabeling" `Quick
            test_signature_invariant_under_relabeling;
          Alcotest.test_case "separates instances" `Quick
            test_signature_separates_instances;
          Alcotest.test_case "permutations invert" `Quick
            test_signature_permutations_invert;
        ] );
      ( "cache",
        [
          Alcotest.test_case "serves exact only" `Quick
            test_cache_serves_exact_only;
          Alcotest.test_case "LRU eviction" `Quick test_cache_lru_eviction;
        ] );
      ( "protocol",
        [
          Alcotest.test_case "parse" `Quick test_protocol_parse;
          Alcotest.test_case "parse bulk" `Quick test_protocol_parse_bulk;
        ] );
      ( "jobs",
        [
          Alcotest.test_case "two jobs interleave on one worker" `Slow
            test_jobs_two_jobs_interleave_on_one_worker;
          Alcotest.test_case "cancel in flight" `Slow
            test_jobs_cancel_inflight;
          Alcotest.test_case "cache hit on isomorphic resubmit" `Slow
            test_jobs_cache_hit_on_isomorphic_resubmit;
        ] );
      ( "serve",
        [
          Alcotest.test_case "transcript" `Slow test_serve_transcript;
          Alcotest.test_case "bulk transcript" `Slow test_serve_bulk;
          Alcotest.test_case "eof" `Quick test_serve_eof_closes;
        ] );
    ]
